//! Independent Bernoulli-vector model.
//!
//! The classic CE family for cut problems (Rubinstein 2002, the
//! paper's reference 23): a candidate solution is a 0/1 vector assigning
//! each graph node to one of two sides, parameterised by per-coordinate
//! probabilities `p_i = P(x_i = 1)`. Used by the benchmark COPs in
//! [`crate::problems`] to validate the driver independently of the
//! mapping problem.

use crate::model::CeModel;
use rand::rngs::StdRng;
use rand::Rng;

/// CE model over `{0,1}^n` with independent coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct BernoulliModel {
    probs: Vec<f64>,
}

impl BernoulliModel {
    /// The maximum-entropy model: every `p_i = 1/2`.
    pub fn uniform(n: usize) -> Self {
        BernoulliModel {
            probs: vec![0.5; n],
        }
    }

    /// Build from explicit probabilities (each clamped to `[0, 1]`).
    pub fn from_probs(probs: Vec<f64>) -> Self {
        BernoulliModel {
            probs: probs.into_iter().map(|p| p.clamp(0.0, 1.0)).collect(),
        }
    }

    /// Coordinate probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Dimension `n`.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True for the empty model.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

impl CeModel for BernoulliModel {
    type Sample = Vec<bool>;

    fn sample(&self, rng: &mut StdRng) -> Vec<bool> {
        self.probs
            .iter()
            .map(|&p| rng.random::<f64>() < p)
            .collect()
    }

    fn update_from_elites(&mut self, elites: &[Vec<bool>], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let m = elites.len() as f64;
        for (i, p) in self.probs.iter_mut().enumerate() {
            let freq = elites.iter().filter(|e| e[i]).count() as f64 / m;
            *p = zeta * freq + (1.0 - zeta) * *p;
        }
    }

    fn is_degenerate(&self, tol: f64) -> bool {
        self.probs.iter().all(|&p| p <= tol || p >= 1.0 - tol)
    }

    fn mode(&self) -> Vec<bool> {
        self.probs.iter().map(|&p| p >= 0.5).collect()
    }

    fn entropy(&self) -> f64 {
        let h = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                0.0
            } else {
                -p * p.ln() - (1.0 - p) * (1.0 - p).ln()
            }
        };
        if self.probs.is_empty() {
            0.0
        } else {
            self.probs.iter().map(|&p| h(p)).sum::<f64>() / self.probs.len() as f64
        }
    }

    fn stability_signature(&self) -> Vec<f64> {
        self.probs.iter().map(|&p| p.max(1.0 - p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_probabilities() {
        let m = BernoulliModel::from_probs(vec![0.0, 1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(71);
        let mut ones = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            let s = m.sample(&mut rng);
            for (i, &b) in s.iter().enumerate() {
                if b {
                    ones[i] += 1;
                }
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], n);
        let f = ones[2] as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02);
    }

    #[test]
    fn update_counts_frequencies() {
        let mut m = BernoulliModel::uniform(2);
        let elites = vec![
            vec![true, false],
            vec![true, false],
            vec![true, true],
            vec![false, false],
        ];
        m.update_from_elites(&elites, 1.0);
        assert!((m.probs()[0] - 0.75).abs() < 1e-12);
        assert!((m.probs()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn smoothing_blends() {
        let mut m = BernoulliModel::uniform(1);
        m.update_from_elites(&[vec![true]], 0.3);
        assert!((m.probs()[0] - (0.3 + 0.7 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn degeneracy_and_mode() {
        let m = BernoulliModel::from_probs(vec![0.999, 0.001]);
        assert!(m.is_degenerate(0.01));
        assert!(!m.is_degenerate(1e-6));
        assert_eq!(m.mode(), vec![true, false]);
    }

    #[test]
    fn entropy_bounds() {
        assert!((BernoulliModel::uniform(5).entropy() - (2.0f64).ln()).abs() < 1e-12);
        assert_eq!(BernoulliModel::from_probs(vec![0.0, 1.0]).entropy(), 0.0);
        assert_eq!(BernoulliModel::from_probs(vec![]).entropy(), 0.0);
    }

    #[test]
    fn clamping_out_of_range_probs() {
        let m = BernoulliModel::from_probs(vec![-0.5, 1.7]);
        assert_eq!(m.probs(), &[0.0, 1.0]);
    }
}
