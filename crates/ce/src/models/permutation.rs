//! The GenPerm permutation model (paper Figure 4).
//!
//! `χ̃` — unrestricted row-by-row sampling — "contains a lot of
//! undesirable mappings, since we are interested in assigning an unique
//! resource for each task" (§4). GenPerm repairs this at sampling time:
//!
//! 1. draw a random visit order `π` over the tasks (rows);
//! 2. allocate task `π_i` a resource by spinning the roulette wheel over
//!    its row of the stochastic matrix, *restricted to columns not yet
//!    taken*;
//! 3. zero the chosen column for the remaining rows (implicitly: restrict
//!    the wheel) and renormalise.
//!
//! The update rule is unchanged (Eq. 11): column frequencies over the
//! elite samples.
//!
//! Two sampling paths draw the identical distribution:
//!
//! * [`PermutationModel::sample_into`] — the literal Figure-4 roulette,
//!   O(n²) per draw. This is the historical RNG stream.
//! * [`FlatSampler::sample_flat`] — one [`AliasTable`] per row, built
//!   once per batch, drawn O(1) with *rejection* on already-used
//!   columns. Rejecting used columns and renormalising over the rest are
//!   the same conditional distribution, so every accepted draw is an
//!   exact restricted-roulette draw; after a bounded number of
//!   rejections (degenerate rows concentrate their mass on used columns)
//!   the row falls back to the exact restricted roulette. Expected cost
//!   per permutation is O(n log n) instead of O(n²).

use crate::batch::{FlatBatch, FlatSampler};
use crate::model::CeModel;
use crate::stochmatrix::StochasticMatrix;
use match_rngutil::alias::AliasTable;
use match_rngutil::roulette::roulette_pick;
use rand::rngs::StdRng;
use rand::Rng;

/// Reusable per-draw scratch for GenPerm: the random visit order, the
/// used-column marks, and the restricted-row weight buffer. One draw
/// allocates nothing once the scratch has warmed up.
#[derive(Debug, Clone, Default)]
pub struct GenPermScratch {
    order: Vec<usize>,
    used: Vec<bool>,
    weights: Vec<f64>,
}

impl GenPermScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GenPermScratch::default()
    }
}

/// Per-batch sampling tables: one alias table per stochastic-matrix row.
/// Rows without positive mass (cannot occur for a valid stochastic
/// matrix, but tolerated) hold an empty table and always take the
/// roulette fallback.
#[derive(Debug, Clone)]
pub struct GenPermTables {
    rows: Vec<AliasTable>,
}

/// CE model over permutations of `0..n` parameterised by an `n × n`
/// stochastic matrix; samples via GenPerm.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationModel {
    matrix: StochasticMatrix,
}

impl PermutationModel {
    /// The uniform model over permutations of `0..n`.
    pub fn uniform(n: usize) -> Self {
        PermutationModel {
            matrix: StochasticMatrix::uniform(n, n),
        }
    }

    /// Wrap an existing (square) stochastic matrix.
    pub fn from_matrix(matrix: StochasticMatrix) -> Self {
        assert_eq!(
            matrix.rows(),
            matrix.cols(),
            "permutation model must be square"
        );
        PermutationModel { matrix }
    }

    /// The underlying stochastic matrix.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// Problem size `n`.
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// True for the trivial size-0 model.
    pub fn is_empty(&self) -> bool {
        self.matrix.rows() == 0
    }

    /// One GenPerm draw (Figure 4) via restricted roulette, reusing
    /// caller-provided [`GenPermScratch`]; `out` receives the
    /// permutation. This is the historical sampler: its RNG stream is
    /// bit-compatible with every release since the seed.
    pub fn sample_into(
        &self,
        rng: &mut StdRng,
        scratch: &mut GenPermScratch,
        out: &mut Vec<usize>,
    ) {
        let n = self.len();
        out.clear();
        out.resize(n, 0);
        scratch.used.clear();
        scratch.used.resize(n, false);

        // Step 1: random task visit order.
        scratch.order.clear();
        scratch.order.extend(0..n);
        match_rngutil::perm::shuffle(&mut scratch.order, rng);

        for visited in 0..n {
            let row = scratch.order[visited];
            let pick = Self::restricted_roulette(
                self.matrix.row(row),
                &scratch.used,
                &mut scratch.weights,
                n - visited,
                rng,
            );
            scratch.used[pick] = true;
            out[row] = pick;
        }
    }

    /// Restrict `row` to unused columns (zeroing the column of P in the
    /// paper's phrasing; renormalisation is implicit in the wheel) and
    /// spin. When all remaining probability mass sits on used columns
    /// (degenerate rows agreeing on one resource), fall back to a
    /// uniform choice among the unused, keeping the sample a valid
    /// permutation.
    fn restricted_roulette<R: Rng + ?Sized>(
        row: &[f64],
        used: &[bool],
        weights: &mut Vec<f64>,
        remaining: usize,
        rng: &mut R,
    ) -> usize {
        weights.clear();
        weights.extend(
            row.iter()
                .enumerate()
                .map(|(j, &p)| if used[j] { 0.0 } else { p }),
        );
        match roulette_pick(weights, rng) {
            Some(j) => j,
            None => {
                let mut k = rng.random_range(0..remaining);
                (0..row.len())
                    .find(|&j| {
                        if used[j] {
                            false
                        } else if k == 0 {
                            true
                        } else {
                            k -= 1;
                            false
                        }
                    })
                    .expect("an unused column exists")
            }
        }
    }
}

impl CeModel for PermutationModel {
    type Sample = Vec<usize>;

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut scratch = GenPermScratch::new();
        let mut out = Vec::new();
        self.sample_into(rng, &mut scratch, &mut out);
        out
    }

    fn update_from_elites(&mut self, elites: &[Vec<usize>], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let n = self.len();
        let mut counts = vec![0.0f64; n * n];
        for e in elites {
            debug_assert_eq!(e.len(), n);
            for (i, &j) in e.iter().enumerate() {
                counts[i * n + j] += 1.0;
            }
        }
        let q = StochasticMatrix::from_rows(n, n, counts);
        self.matrix.smooth_toward(&q, zeta);
    }

    fn is_degenerate(&self, tol: f64) -> bool {
        self.matrix.is_degenerate(tol)
    }

    fn mode(&self) -> Vec<usize> {
        // Greedy maximum-probability matching: rows in descending max
        // probability claim their argmax among free columns. (The exact
        // mode of the GenPerm distribution is a hard assignment problem;
        // after convergence the matrix is degenerate and this greedy
        // recovers it exactly.)
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.matrix
                .row_max(b)
                .1
                .partial_cmp(&self.matrix.row_max(a).1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut used = vec![false; n];
        let mut out = vec![0usize; n];
        for &i in &order {
            let row = self.matrix.row(i);
            let mut best: Option<(usize, f64)> = None;
            for (j, &p) in row.iter().enumerate() {
                if !used[j] && best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((j, p));
                }
            }
            let (j, _) = best.expect("a free column exists");
            used[j] = true;
            out[i] = j;
        }
        out
    }

    fn entropy(&self) -> f64 {
        self.matrix.mean_entropy()
    }

    fn stability_signature(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.matrix.row_max(i).1).collect()
    }
}

impl FlatSampler for PermutationModel {
    type Tables = GenPermTables;
    type Scratch = GenPermScratch;

    fn width(&self) -> usize {
        self.len()
    }

    fn new_tables(&self) -> GenPermTables {
        GenPermTables {
            rows: vec![AliasTable::empty(); self.len()],
        }
    }

    fn fill_tables(&self, tables: &mut GenPermTables) {
        tables.rows.resize_with(self.len(), AliasTable::empty);
        for (i, table) in tables.rows.iter_mut().enumerate() {
            // A failed rebuild (no positive mass) leaves the table empty;
            // sample_flat then always takes the roulette fallback.
            table.rebuild(self.matrix.row(i));
        }
    }

    fn new_scratch(&self) -> GenPermScratch {
        GenPermScratch::new()
    }

    fn sample_flat<R: Rng + ?Sized>(
        &self,
        tables: &GenPermTables,
        scratch: &mut GenPermScratch,
        rng: &mut R,
        out: &mut [usize],
    ) {
        let n = self.len();
        debug_assert_eq!(out.len(), n);
        debug_assert_eq!(tables.rows.len(), n);
        scratch.used.clear();
        scratch.used.resize(n, false);
        scratch.order.clear();
        scratch.order.extend(0..n);
        match_rngutil::perm::shuffle(&mut scratch.order, rng);

        for visited in 0..n {
            let row = scratch.order[visited];
            let remaining = n - visited;
            let table = &tables.rows[row];
            let mut pick = None;
            if !table.is_empty() {
                // Rejection over the full-row alias table: conditioning
                // the row distribution on "column unused" IS the
                // restricted-roulette distribution, so any accepted draw
                // is exact. The spin budget scales with the expected
                // n / remaining tries of a near-uniform row; exceeding it
                // (mass concentrated on used columns) costs nothing but
                // the fallback below — the fallback is exact too, so the
                // bound only trades constant factors, never correctness.
                let budget = 4 * (n / remaining) + 8;
                for _ in 0..budget {
                    let j = table.sample(rng);
                    if !scratch.used[j] {
                        pick = Some(j);
                        break;
                    }
                }
            }
            let pick = match pick {
                Some(j) => j,
                None => Self::restricted_roulette(
                    self.matrix.row(row),
                    &scratch.used,
                    &mut scratch.weights,
                    remaining,
                    rng,
                ),
            };
            scratch.used[pick] = true;
            out[row] = pick;
        }
    }

    fn update_from_flat(&mut self, batch: &FlatBatch<'_>, elites: &[usize], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let n = self.len();
        debug_assert_eq!(batch.width(), n);
        let mut counts = vec![0.0f64; n * n];
        for &e in elites {
            for (i, &j) in batch.row(e).iter().enumerate() {
                counts[i * n + j] += 1.0;
            }
        }
        let q = StochasticMatrix::from_rows(n, n, counts);
        self.matrix.smooth_toward(&q, zeta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_rngutil::perm::is_permutation;
    use rand::SeedableRng;

    #[test]
    fn samples_are_permutations() {
        let model = PermutationModel::uniform(10);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..50 {
            let s = model.sample(&mut rng);
            assert!(is_permutation(&s), "{s:?}");
        }
    }

    #[test]
    fn flat_samples_are_permutations() {
        let model = PermutationModel::uniform(10);
        let mut tables = model.new_tables();
        model.fill_tables(&mut tables);
        let mut scratch = model.new_scratch();
        let mut rng = StdRng::seed_from_u64(51);
        let mut out = vec![0usize; 10];
        for _ in 0..50 {
            model.sample_flat(&tables, &mut scratch, &mut rng, &mut out);
            assert!(is_permutation(&out), "{out:?}");
        }
    }

    #[test]
    fn flat_sampling_is_deterministic_per_seed_and_scratch_free() {
        // Scratch must carry no state between draws: interleaving draws
        // through one scratch equals fresh-scratch draws, seed by seed.
        let model = PermutationModel::uniform(8);
        let mut tables = model.new_tables();
        model.fill_tables(&mut tables);
        let mut shared = model.new_scratch();
        let mut a = vec![0usize; 8];
        let mut b = vec![0usize; 8];
        for seed in 0..20u64 {
            model.sample_flat(
                &tables,
                &mut shared,
                &mut StdRng::seed_from_u64(seed),
                &mut a,
            );
            let mut fresh = model.new_scratch();
            model.sample_flat(
                &tables,
                &mut fresh,
                &mut StdRng::seed_from_u64(seed),
                &mut b,
            );
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn uniform_model_samples_uniform_first_coordinate() {
        let model = PermutationModel::uniform(5);
        let mut rng = StdRng::seed_from_u64(52);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[model.sample(&mut rng)[0]] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.2).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn degenerate_matrix_samples_its_permutation() {
        // Identity-permutation degenerate matrix.
        let n = 6;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..20 {
            assert_eq!(model.sample(&mut rng), (0..n).collect::<Vec<_>>());
        }
        assert!(model.is_degenerate(1e-9));
        assert_eq!(model.mode(), (0..n).collect::<Vec<_>>());
        // The alias path agrees.
        let mut tables = model.new_tables();
        model.fill_tables(&mut tables);
        let mut scratch = model.new_scratch();
        let mut out = vec![0usize; n];
        for _ in 0..20 {
            model.sample_flat(&tables, &mut scratch, &mut rng, &mut out);
            assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn conflicting_degenerate_rows_still_yield_permutations() {
        // Both rows put all mass on column 0: GenPerm's fallback must
        // still return a permutation — on both sampling paths.
        let data = vec![1.0, 0.0, 1.0, 0.0];
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(2, 2, data));
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..50 {
            let s = model.sample(&mut rng);
            assert!(is_permutation(&s), "{s:?}");
        }
        let mut tables = model.new_tables();
        model.fill_tables(&mut tables);
        let mut scratch = model.new_scratch();
        let mut out = vec![0usize; 2];
        for _ in 0..50 {
            model.sample_flat(&tables, &mut scratch, &mut rng, &mut out);
            assert!(is_permutation(&out), "{out:?}");
        }
    }

    #[test]
    fn update_moves_mass_toward_elites() {
        let mut model = PermutationModel::uniform(3);
        // Elite consensus: identity permutation.
        let elites = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 2, 1]];
        model.update_from_elites(&elites, 1.0);
        // Row 0 always mapped to 0 → probability 1.
        assert!((model.matrix().get(0, 0) - 1.0).abs() < 1e-12);
        // Row 1: 2/3 on column 1, 1/3 on column 2.
        assert!((model.matrix().get(1, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((model.matrix().get(1, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flat_update_matches_vec_update() {
        let elites = [vec![0usize, 1, 2], vec![0, 1, 2], vec![0, 2, 1]];
        let mut by_vec = PermutationModel::uniform(3);
        by_vec.update_from_elites(elites.as_ref(), 0.3);
        // Same elites through the flat path (indices deliberately out of
        // storage order to check they are read by index, not position).
        let mut flat_data = Vec::new();
        for e in elites.iter().rev() {
            flat_data.extend_from_slice(e);
        }
        let mut by_flat = PermutationModel::uniform(3);
        by_flat.update_from_flat(&FlatBatch::new(3, &flat_data), &[2, 1, 0], 0.3);
        assert_eq!(by_vec, by_flat);
    }

    #[test]
    fn smoothed_update_blends() {
        let mut model = PermutationModel::uniform(2);
        let elites = vec![vec![0, 1]];
        model.update_from_elites(&elites, 0.3);
        // p00 = 0.3·1 + 0.7·0.5 = 0.65
        assert!((model.matrix().get(0, 0) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_elites_is_noop() {
        let mut model = PermutationModel::uniform(3);
        let before = model.clone();
        model.update_from_elites(&[], 0.5);
        model.update_from_flat(&FlatBatch::new(3, &[]), &[], 0.5);
        assert_eq!(model, before);
    }

    #[test]
    fn repeated_updates_converge_to_degenerate() {
        let mut model = PermutationModel::uniform(4);
        let elite = vec![vec![2, 0, 3, 1]];
        for _ in 0..200 {
            model.update_from_elites(&elite, 0.3);
        }
        assert!(model.is_degenerate(1e-6));
        assert_eq!(model.mode(), vec![2, 0, 3, 1]);
        assert!(model.entropy() < 1e-4);
    }

    #[test]
    fn stability_signature_tracks_row_maxima() {
        let model = PermutationModel::uniform(3);
        let sig = model.stability_signature();
        assert_eq!(sig.len(), 3);
        for v in sig {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_is_always_a_permutation() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let n = 7;
            let data: Vec<f64> = (0..n * n)
                .map(|_| rand::Rng::random::<f64>(&mut rng))
                .collect();
            let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
            assert!(is_permutation(&model.mode()));
        }
    }
}
