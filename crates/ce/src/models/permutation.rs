//! The GenPerm permutation model (paper Figure 4).
//!
//! `χ̃` — unrestricted row-by-row sampling — "contains a lot of
//! undesirable mappings, since we are interested in assigning an unique
//! resource for each task" (§4). GenPerm repairs this at sampling time:
//!
//! 1. draw a random visit order `π` over the tasks (rows);
//! 2. allocate task `π_i` a resource by spinning the roulette wheel over
//!    its row of the stochastic matrix, *restricted to columns not yet
//!    taken*;
//! 3. zero the chosen column for the remaining rows (implicitly: restrict
//!    the wheel) and renormalise.
//!
//! The update rule is unchanged (Eq. 11): column frequencies over the
//! elite samples.

use crate::model::CeModel;
use crate::stochmatrix::StochasticMatrix;
use match_rngutil::roulette::roulette_pick;
use rand::rngs::StdRng;
use rand::Rng;

/// CE model over permutations of `0..n` parameterised by an `n × n`
/// stochastic matrix; samples via GenPerm.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationModel {
    matrix: StochasticMatrix,
}

impl PermutationModel {
    /// The uniform model over permutations of `0..n`.
    pub fn uniform(n: usize) -> Self {
        PermutationModel {
            matrix: StochasticMatrix::uniform(n, n),
        }
    }

    /// Wrap an existing (square) stochastic matrix.
    pub fn from_matrix(matrix: StochasticMatrix) -> Self {
        assert_eq!(
            matrix.rows(),
            matrix.cols(),
            "permutation model must be square"
        );
        PermutationModel { matrix }
    }

    /// The underlying stochastic matrix.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// Problem size `n`.
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// True for the trivial size-0 model.
    pub fn is_empty(&self) -> bool {
        self.matrix.rows() == 0
    }

    /// One GenPerm draw (Figure 4), reusing caller-provided scratch
    /// buffers: `used` marks taken columns, `weights` holds the
    /// restricted row, and `out` receives the permutation.
    pub fn sample_into(
        &self,
        rng: &mut StdRng,
        used: &mut Vec<bool>,
        weights: &mut Vec<f64>,
        out: &mut Vec<usize>,
    ) {
        let n = self.len();
        used.clear();
        used.resize(n, false);
        out.clear();
        out.resize(n, 0);

        // Step 1: random task visit order.
        let mut order: Vec<usize> = (0..n).collect();
        match_rngutil::perm::shuffle(&mut order, rng);

        for (visited, &row) in order.iter().enumerate() {
            // Restrict the row to unused columns (zeroing the column of P
            // in the paper's phrasing; renormalisation is implicit in the
            // wheel).
            weights.clear();
            weights.extend(self.matrix.row(row).iter().enumerate().map(|(j, &p)| {
                if used[j] {
                    0.0
                } else {
                    p
                }
            }));
            let pick = match roulette_pick(weights, rng) {
                Some(j) => j,
                None => {
                    // All remaining probability mass sits on used columns
                    // (degenerate rows agreeing on one resource). Fall
                    // back to a uniform choice among the unused, keeping
                    // the sample a valid permutation.
                    let remaining = n - visited;
                    let mut k = rng.random_range(0..remaining);
                    (0..n)
                        .find(|&j| {
                            if used[j] {
                                false
                            } else if k == 0 {
                                true
                            } else {
                                k -= 1;
                                false
                            }
                        })
                        .expect("an unused column exists")
                }
            };
            used[pick] = true;
            out[row] = pick;
        }
    }
}

impl CeModel for PermutationModel {
    type Sample = Vec<usize>;

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut used = Vec::new();
        let mut weights = Vec::new();
        let mut out = Vec::new();
        self.sample_into(rng, &mut used, &mut weights, &mut out);
        out
    }

    fn update_from_elites(&mut self, elites: &[Vec<usize>], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let n = self.len();
        let mut counts = vec![0.0f64; n * n];
        for e in elites {
            debug_assert_eq!(e.len(), n);
            for (i, &j) in e.iter().enumerate() {
                counts[i * n + j] += 1.0;
            }
        }
        let q = StochasticMatrix::from_rows(n, n, counts);
        self.matrix.smooth_toward(&q, zeta);
    }

    fn is_degenerate(&self, tol: f64) -> bool {
        self.matrix.is_degenerate(tol)
    }

    fn mode(&self) -> Vec<usize> {
        // Greedy maximum-probability matching: rows in descending max
        // probability claim their argmax among free columns. (The exact
        // mode of the GenPerm distribution is a hard assignment problem;
        // after convergence the matrix is degenerate and this greedy
        // recovers it exactly.)
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.matrix
                .row_max(b)
                .1
                .partial_cmp(&self.matrix.row_max(a).1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut used = vec![false; n];
        let mut out = vec![0usize; n];
        for &i in &order {
            let row = self.matrix.row(i);
            let mut best: Option<(usize, f64)> = None;
            for (j, &p) in row.iter().enumerate() {
                if !used[j] && best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((j, p));
                }
            }
            let (j, _) = best.expect("a free column exists");
            used[j] = true;
            out[i] = j;
        }
        out
    }

    fn entropy(&self) -> f64 {
        self.matrix.mean_entropy()
    }

    fn stability_signature(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.matrix.row_max(i).1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_rngutil::perm::is_permutation;
    use rand::SeedableRng;

    #[test]
    fn samples_are_permutations() {
        let model = PermutationModel::uniform(10);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..50 {
            let s = model.sample(&mut rng);
            assert!(is_permutation(&s), "{s:?}");
        }
    }

    #[test]
    fn uniform_model_samples_uniform_first_coordinate() {
        let model = PermutationModel::uniform(5);
        let mut rng = StdRng::seed_from_u64(52);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[model.sample(&mut rng)[0]] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.2).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn degenerate_matrix_samples_its_permutation() {
        // Identity-permutation degenerate matrix.
        let n = 6;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..20 {
            assert_eq!(model.sample(&mut rng), (0..n).collect::<Vec<_>>());
        }
        assert!(model.is_degenerate(1e-9));
        assert_eq!(model.mode(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn conflicting_degenerate_rows_still_yield_permutations() {
        // Both rows put all mass on column 0: GenPerm's fallback must
        // still return a permutation.
        let data = vec![1.0, 0.0, 1.0, 0.0];
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(2, 2, data));
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..50 {
            let s = model.sample(&mut rng);
            assert!(is_permutation(&s), "{s:?}");
        }
    }

    #[test]
    fn update_moves_mass_toward_elites() {
        let mut model = PermutationModel::uniform(3);
        // Elite consensus: identity permutation.
        let elites = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 2, 1]];
        model.update_from_elites(&elites, 1.0);
        // Row 0 always mapped to 0 → probability 1.
        assert!((model.matrix().get(0, 0) - 1.0).abs() < 1e-12);
        // Row 1: 2/3 on column 1, 1/3 on column 2.
        assert!((model.matrix().get(1, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((model.matrix().get(1, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoothed_update_blends() {
        let mut model = PermutationModel::uniform(2);
        let elites = vec![vec![0, 1]];
        model.update_from_elites(&elites, 0.3);
        // p00 = 0.3·1 + 0.7·0.5 = 0.65
        assert!((model.matrix().get(0, 0) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_elites_is_noop() {
        let mut model = PermutationModel::uniform(3);
        let before = model.clone();
        model.update_from_elites(&[], 0.5);
        assert_eq!(model, before);
    }

    #[test]
    fn repeated_updates_converge_to_degenerate() {
        let mut model = PermutationModel::uniform(4);
        let elite = vec![vec![2, 0, 3, 1]];
        for _ in 0..200 {
            model.update_from_elites(&elite, 0.3);
        }
        assert!(model.is_degenerate(1e-6));
        assert_eq!(model.mode(), vec![2, 0, 3, 1]);
        assert!(model.entropy() < 1e-4);
    }

    #[test]
    fn stability_signature_tracks_row_maxima() {
        let model = PermutationModel::uniform(3);
        let sig = model.stability_signature();
        assert_eq!(sig.len(), 3);
        for v in sig {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_is_always_a_permutation() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let n = 7;
            let data: Vec<f64> = (0..n * n)
                .map(|_| rand::Rng::random::<f64>(&mut rng))
                .collect();
            let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
            assert!(is_permutation(&model.mode()));
        }
    }
}
