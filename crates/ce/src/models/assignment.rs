//! Independent-row assignment model.
//!
//! "The most naive way to generate the random vector X … is to
//! independently draw X₁, …, X_{|V_r|−1} according to fixed distributions"
//! (§4). Rows are sampled independently from the stochastic matrix, so
//! duplicates are allowed. The paper discards such samples for the
//! bijective case (GenPerm instead); this model remains the right family
//! for the *many-to-one* generalisation (`|V_t| > |V_r|`) and serves as
//! the ablation arm that quantifies how much GenPerm buys.

use crate::batch::{FlatBatch, FlatSampler};
use crate::model::CeModel;
use crate::stochmatrix::StochasticMatrix;
use match_rngutil::alias::AliasTable;
use match_rngutil::roulette::roulette_pick;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-batch sampling tables for [`AssignmentModel`]: one alias table per
/// row. Rows are independent, so a draw is `rows` O(1) alias picks with
/// no rejection at all.
#[derive(Debug, Clone)]
pub struct AssignmentTables {
    rows: Vec<AliasTable>,
}

/// CE model over `rows`-long vectors with entries in `0..cols`, each row
/// drawn independently from its distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentModel {
    matrix: StochasticMatrix,
}

impl AssignmentModel {
    /// Uniform model: every task equally likely on every resource.
    pub fn uniform(rows: usize, cols: usize) -> Self {
        AssignmentModel {
            matrix: StochasticMatrix::uniform(rows, cols),
        }
    }

    /// Wrap an existing stochastic matrix.
    pub fn from_matrix(matrix: StochasticMatrix) -> Self {
        AssignmentModel { matrix }
    }

    /// The underlying stochastic matrix.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// Number of rows (tasks).
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of columns (resources).
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// Sample into a caller-provided buffer.
    pub fn sample_into(&self, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        for i in 0..self.rows() {
            let j = roulette_pick(self.matrix.row(i), rng)
                .expect("stochastic rows always have positive mass");
            out.push(j);
        }
    }
}

impl CeModel for AssignmentModel {
    type Sample = Vec<usize>;

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.rows());
        self.sample_into(rng, &mut out);
        out
    }

    fn update_from_elites(&mut self, elites: &[Vec<usize>], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let (rows, cols) = (self.rows(), self.cols());
        let mut counts = vec![0.0f64; rows * cols];
        for e in elites {
            debug_assert_eq!(e.len(), rows);
            for (i, &j) in e.iter().enumerate() {
                counts[i * cols + j] += 1.0;
            }
        }
        let q = StochasticMatrix::from_rows(rows, cols, counts);
        self.matrix.smooth_toward(&q, zeta);
    }

    fn is_degenerate(&self, tol: f64) -> bool {
        self.matrix.is_degenerate(tol)
    }

    fn mode(&self) -> Vec<usize> {
        self.matrix.mode_assignment()
    }

    fn entropy(&self) -> f64 {
        self.matrix.mean_entropy()
    }

    fn stability_signature(&self) -> Vec<f64> {
        (0..self.rows()).map(|i| self.matrix.row_max(i).1).collect()
    }
}

impl FlatSampler for AssignmentModel {
    type Tables = AssignmentTables;
    type Scratch = ();

    fn width(&self) -> usize {
        self.rows()
    }

    fn new_tables(&self) -> AssignmentTables {
        AssignmentTables {
            rows: vec![AliasTable::empty(); self.rows()],
        }
    }

    fn fill_tables(&self, tables: &mut AssignmentTables) {
        tables.rows.resize_with(self.rows(), AliasTable::empty);
        for (i, table) in tables.rows.iter_mut().enumerate() {
            let ok = table.rebuild(self.matrix.row(i));
            assert!(ok, "stochastic rows always have positive mass");
        }
    }

    fn new_scratch(&self) {}

    fn sample_flat<R: Rng + ?Sized>(
        &self,
        tables: &AssignmentTables,
        _scratch: &mut (),
        rng: &mut R,
        out: &mut [usize],
    ) {
        debug_assert_eq!(out.len(), self.rows());
        debug_assert_eq!(tables.rows.len(), self.rows());
        for (slot, table) in out.iter_mut().zip(&tables.rows) {
            *slot = table.sample(rng);
        }
    }

    fn update_from_flat(&mut self, batch: &FlatBatch<'_>, elites: &[usize], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let (rows, cols) = (self.rows(), self.cols());
        debug_assert_eq!(batch.width(), rows);
        let mut counts = vec![0.0f64; rows * cols];
        for &e in elites {
            for (i, &j) in batch.row(e).iter().enumerate() {
                counts[i * cols + j] += 1.0;
            }
        }
        let q = StochasticMatrix::from_rows(rows, cols, counts);
        self.matrix.smooth_toward(&q, zeta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_shape_and_range() {
        let m = AssignmentModel::uniform(6, 4);
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..50 {
            let s = m.sample(&mut rng);
            assert_eq!(s.len(), 6);
            assert!(s.iter().all(|&j| j < 4));
        }
    }

    #[test]
    fn rectangular_many_to_one_allowed() {
        // More tasks than resources: duplicates must occur.
        let m = AssignmentModel::uniform(10, 2);
        let mut rng = StdRng::seed_from_u64(62);
        let s = m.sample(&mut rng);
        assert_eq!(s.len(), 10);
        // Pigeonhole: at least one duplicate.
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert!(unique.len() <= 2);
    }

    #[test]
    fn update_matches_frequencies() {
        let mut m = AssignmentModel::uniform(2, 3);
        let elites = vec![vec![0, 2], vec![0, 2], vec![1, 2], vec![0, 0]];
        m.update_from_elites(&elites, 1.0);
        assert!((m.matrix().get(0, 0) - 0.75).abs() < 1e-12);
        assert!((m.matrix().get(0, 1) - 0.25).abs() < 1e-12);
        assert!((m.matrix().get(1, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mode_is_rowwise_argmax() {
        let data = vec![0.1, 0.8, 0.1, 0.6, 0.2, 0.2];
        let m = AssignmentModel::from_matrix(StochasticMatrix::from_rows(2, 3, data));
        assert_eq!(m.mode(), vec![1, 0]);
    }

    #[test]
    fn degenerate_model_samples_mode() {
        let data = vec![0.0, 1.0, 1.0, 0.0];
        let m = AssignmentModel::from_matrix(StochasticMatrix::from_rows(2, 2, data));
        let mut rng = StdRng::seed_from_u64(63);
        for _ in 0..20 {
            assert_eq!(m.sample(&mut rng), vec![1, 0]);
        }
        assert!(m.is_degenerate(1e-9));
    }

    #[test]
    fn empty_elites_noop() {
        let mut m = AssignmentModel::uniform(2, 2);
        let before = m.clone();
        m.update_from_elites(&[], 0.4);
        m.update_from_flat(&FlatBatch::new(2, &[]), &[], 0.4);
        assert_eq!(m, before);
    }

    #[test]
    fn flat_sample_shape_and_range() {
        let m = AssignmentModel::uniform(6, 4);
        let mut tables = m.new_tables();
        m.fill_tables(&mut tables);
        let mut rng = StdRng::seed_from_u64(64);
        let mut out = vec![0usize; 6];
        for _ in 0..50 {
            m.sample_flat(&tables, &mut (), &mut rng, &mut out);
            assert!(out.iter().all(|&j| j < 4));
        }
    }

    #[test]
    fn flat_degenerate_model_samples_mode() {
        let data = vec![0.0, 1.0, 1.0, 0.0];
        let m = AssignmentModel::from_matrix(StochasticMatrix::from_rows(2, 2, data));
        let mut tables = m.new_tables();
        m.fill_tables(&mut tables);
        let mut rng = StdRng::seed_from_u64(65);
        let mut out = vec![0usize; 2];
        for _ in 0..20 {
            m.sample_flat(&tables, &mut (), &mut rng, &mut out);
            assert_eq!(out, vec![1, 0]);
        }
    }

    #[test]
    fn flat_update_matches_vec_update() {
        let elites = [vec![0usize, 2], vec![0, 2], vec![1, 2], vec![0, 0]];
        let mut by_vec = AssignmentModel::uniform(2, 3);
        by_vec.update_from_elites(elites.as_ref(), 0.6);
        let mut flat_data = Vec::new();
        for e in &elites {
            flat_data.extend_from_slice(e);
        }
        let mut by_flat = AssignmentModel::uniform(2, 3);
        by_flat.update_from_flat(&FlatBatch::new(2, &flat_data), &[0, 1, 2, 3], 0.6);
        assert_eq!(by_vec, by_flat);
    }
}
