//! Rare-event probability estimation — the CE method's original home.
//!
//! §3: the CE method "was originally formulated as an adaptive
//! algorithm for estimating probabilities of rare events" (Rubinstein
//! 1997), and the optimisation view literally *casts the COP as a
//! rare event* (`ℓ(γ*) = 1/|χ|`). This module implements the classic
//! two-phase algorithm for the canonical teaching example — the tail
//! probability `ℓ = P(Σ X_i > γ)` of a sum of independent exponentials:
//!
//! 1. **Multi-level CE phase** — adaptively tilt the exponential rates
//!    toward the rare set through the level sequence `γ̂_1 ≤ γ̂_2 ≤ …`
//!    (the quantile trick of Figure 2) until the target level is
//!    reachable.
//! 2. **Estimation phase** — importance-sample under the tilted rates
//!    and average the likelihood ratios (Eq. 4–6's LR estimator).
//!
//! Crude Monte Carlo needs `≫ 1/ℓ` samples for a usable estimate; the
//! CE estimator gets there with a few thousand (demonstrated in the
//! tests against the closed-form Erlang tail).

use match_rngutil::seed::rng_from;
use rand::rngs::StdRng;
use rand::Rng;

/// Result of a rare-event estimation run.
#[derive(Debug, Clone)]
pub struct RareEventEstimate {
    /// The estimated probability `ℓ̂`.
    pub probability: f64,
    /// Relative error estimate (sample std of the LR terms / (√N · ℓ̂)).
    pub relative_error: f64,
    /// Tilted (importance) rates after the CE phase.
    pub tilted_rates: Vec<f64>,
    /// CE levels `γ̂_t` visited on the way to the target.
    pub levels: Vec<f64>,
    /// Total samples drawn (both phases).
    pub samples: u64,
}

/// Estimate `P(Σ X_i > gamma)` where `X_i ~ Exp(rate_i)` independent,
/// with the two-phase CE algorithm.
///
/// `rho` is the CE quantile (e.g. 0.1), `n_ce` the CE-phase sample size
/// and `n_final` the estimation-phase sample size.
pub fn estimate_exp_sum_tail(
    rates: &[f64],
    gamma: f64,
    rho: f64,
    n_ce: usize,
    n_final: usize,
    rng: &mut StdRng,
) -> RareEventEstimate {
    assert!(!rates.is_empty(), "need at least one component");
    assert!(rates.iter().all(|&r| r > 0.0), "rates must be positive");
    assert!(rho > 0.0 && rho < 1.0, "rho in (0,1)");
    assert!(n_ce >= 10 && n_final >= 10, "sample sizes too small");

    let dim = rates.len();
    let mut v: Vec<f64> = rates.to_vec(); // tilted rates, start at nominal
    let mut levels = Vec::new();
    let mut samples: u64 = 0;

    // Phase 1: multi-level CE updates of the tilted rates.
    // For exponentials the analytic CE update is v_i = m / Σ_elite x_i
    // (the MLE of the rate over the elite samples).
    for _ in 0..100 {
        let mut draws: Vec<Vec<f64>> = Vec::with_capacity(n_ce);
        let mut sums: Vec<f64> = Vec::with_capacity(n_ce);
        for _ in 0..n_ce {
            let x: Vec<f64> = v.iter().map(|&r| sample_exp(r, rng)).collect();
            sums.push(x.iter().sum());
            draws.push(x);
        }
        samples += n_ce as u64;
        // (1-ρ) quantile of the sums — we push levels *up* toward γ.
        let mut order: Vec<usize> = (0..n_ce).collect();
        order.sort_by(|&a, &b| sums[b].partial_cmp(&sums[a]).unwrap());
        let elite_count = ((rho * n_ce as f64).floor() as usize).max(1);
        let level = sums[order[elite_count - 1]].min(gamma);
        levels.push(level);
        // Elite = samples with sum ≥ level.
        let elites: Vec<&Vec<f64>> = order
            .iter()
            .take_while(|&&i| sums[i] >= level)
            .map(|&i| &draws[i])
            .collect();
        let m = elites.len() as f64;
        for i in 0..dim {
            let total: f64 = elites.iter().map(|e| e[i]).sum();
            if total > 0.0 {
                v[i] = m / total;
            }
        }
        if level >= gamma {
            break;
        }
    }

    // Phase 2: importance sampling under v with likelihood ratios.
    // W(x) = Π (rate_i / v_i) · exp(-(rate_i - v_i) x_i).
    let mut sum_w = 0.0f64;
    let mut sum_w2 = 0.0f64;
    for _ in 0..n_final {
        let x: Vec<f64> = v.iter().map(|&r| sample_exp(r, rng)).collect();
        let total: f64 = x.iter().sum();
        if total > gamma {
            let mut log_w = 0.0;
            for i in 0..dim {
                log_w += (rates[i] / v[i]).ln() - (rates[i] - v[i]) * x[i];
            }
            let w = log_w.exp();
            sum_w += w;
            sum_w2 += w * w;
        }
    }
    samples += n_final as u64;
    let ell = sum_w / n_final as f64;
    let var = (sum_w2 / n_final as f64 - ell * ell).max(0.0);
    let rel_err = if ell > 0.0 {
        (var / n_final as f64).sqrt() / ell
    } else {
        f64::INFINITY
    };

    RareEventEstimate {
        probability: ell,
        relative_error: rel_err,
        tilted_rates: v,
        levels,
        samples,
    }
}

/// Crude Monte Carlo estimate of the same tail, for comparison.
pub fn crude_exp_sum_tail(rates: &[f64], gamma: f64, n: usize, rng: &mut StdRng) -> f64 {
    let mut hits = 0usize;
    for _ in 0..n {
        let total: f64 = rates.iter().map(|&r| sample_exp(r, rng)).sum();
        if total > gamma {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

fn sample_exp(rate: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Closed-form tail of an Erlang(k, λ) sum (i.i.d. case):
/// `P(S > γ) = e^{-λγ} Σ_{j<k} (λγ)^j / j!`.
pub fn erlang_tail(k: usize, lambda: f64, gamma: f64) -> f64 {
    let x = lambda * gamma;
    let mut term = 1.0;
    let mut acc = 1.0;
    for j in 1..k {
        term *= x / j as f64;
        acc += term;
    }
    (-x).exp() * acc
}

/// Convenience: deterministic estimate with a derived RNG.
pub fn estimate_with_seed(rates: &[f64], gamma: f64, seed: u64) -> RareEventEstimate {
    let mut rng = rng_from(seed, 0xEE);
    estimate_exp_sum_tail(rates, gamma, 0.1, 2000, 20_000, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erlang_tail_sanity() {
        // k = 1: P(X > γ) = e^{-λγ}.
        assert!((erlang_tail(1, 2.0, 3.0) - (-6.0f64).exp()).abs() < 1e-12);
        // Tail decreasing in γ.
        assert!(erlang_tail(3, 1.0, 5.0) > erlang_tail(3, 1.0, 10.0));
        // P(S > 0) = 1.
        assert!((erlang_tail(4, 1.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ce_estimate_matches_closed_form_moderate() {
        // 5 i.i.d. Exp(1), γ = 20: ℓ ≈ 1.7e-6 — crude MC with 20k
        // samples would see ~0 hits.
        let exact = erlang_tail(5, 1.0, 20.0);
        let est = estimate_with_seed(&[1.0; 5], 20.0, 42);
        let ratio = est.probability / exact;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {} vs exact {} (ratio {ratio})",
            est.probability,
            exact
        );
        assert!(est.relative_error < 0.3, "rel err {}", est.relative_error);
    }

    #[test]
    fn levels_increase_to_gamma() {
        let est = estimate_with_seed(&[1.0; 4], 15.0, 7);
        assert!(!est.levels.is_empty());
        for w in est.levels.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "levels not monotone: {:?}", est.levels);
        }
        assert!((est.levels.last().unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn tilted_rates_are_smaller_than_nominal() {
        // Tilting toward large sums means *slower* decay → smaller rates.
        let est = estimate_with_seed(&[2.0; 3], 10.0, 9);
        for &r in &est.tilted_rates {
            assert!(r < 2.0, "tilted rate {r} not reduced");
        }
    }

    #[test]
    fn crude_mc_agrees_on_common_events() {
        // For a NON-rare event both estimators agree.
        let mut rng = StdRng::seed_from_u64(11);
        let exact = erlang_tail(3, 1.0, 2.0); // ≈ 0.68
        let crude = crude_exp_sum_tail(&[1.0; 3], 2.0, 50_000, &mut rng);
        assert!((crude - exact).abs() < 0.02);
        let est = estimate_with_seed(&[1.0; 3], 2.0, 13);
        assert!((est.probability - exact).abs() < 0.05);
    }

    #[test]
    fn crude_mc_fails_on_rare_events() {
        // The motivating failure: 20k crude samples of a ~1.7e-6 event
        // see at most a couple of hits, so the estimate is useless
        // (either 0 or off by orders of magnitude).
        let mut rng = StdRng::seed_from_u64(17);
        let crude = crude_exp_sum_tail(&[1.0; 5], 20.0, 20_000, &mut rng);
        assert!(
            crude <= 2.0 / 20_000.0,
            "crude MC hit the rare event implausibly often: {crude}"
        );
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn rejects_bad_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        estimate_exp_sum_tail(&[1.0, -1.0], 5.0, 0.1, 100, 100, &mut rng);
    }
}
