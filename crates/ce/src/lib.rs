//! A generic Cross-Entropy (CE) optimization framework.
//!
//! §3 of the paper presents the CE method in Rubinstein's generic form
//! (Figure 2): repeatedly (1) draw `N` samples from a parameterised
//! distribution family `f(·; v)`, (2) keep the `ρ`-elite by the
//! performance function `S`, and (3) move the parameters `v` toward the
//! maximum-likelihood estimate over the elite, optionally smoothed
//! (Eq. 13). The MaTCH heuristic in `match-core` is an instance of this
//! framework; implementing the framework generically lets us validate it
//! on independent benchmark COPs from the CE literature (max-cut and
//! graph bipartition, Rubinstein 2002) before trusting it on the mapping
//! problem.
//!
//! * [`stochmatrix`] — row-stochastic matrices, the parameter object of
//!   assignment-type problems (tasks × resources), with entropy and
//!   degeneracy measures (paper Figure 3).
//! * [`model`] — the [`CeModel`] trait: sample, elite-update, smoothing,
//!   degeneracy.
//! * [`models`] — permutation (GenPerm), independent-assignment and
//!   Bernoulli-vector model families.
//! * [`driver`] — the iterative optimizer (Figure 2 / Figure 5 skeleton)
//!   with elite selection, smoothing, stability-based stopping and full
//!   per-iteration telemetry.
//! * [`problems`] — benchmark COPs (max-cut, bipartition) exercising the
//!   framework end to end.
//!
//! ## Elite-selection convention
//!
//! The paper's Step 4–5 (Figure 5) sorts performances "from the largest
//! to the smallest" and sets `γ_k = s_{⌊ρN⌋}`, inheriting notation from
//! the *maximization* form of the CE tutorial while MaTCH *minimizes*
//! makespan. We implement the standard minimization reading: the elite
//! set is the `⌊ρN⌋` *best* (lowest-cost) samples and `γ_k` is the worst
//! cost inside the elite, i.e. the sample `ρ`-quantile. This matches
//! Eq. 10/11, where the indicator counts samples with `S(X) ≤ γ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod driver;
pub mod model;
pub mod models;
pub mod problems;
pub mod rare_event;
pub mod stochmatrix;

pub use batch::{FlatBatch, FlatEvaluator, FlatSampler, RowEval};
pub use driver::{
    minimize, minimize_controlled, minimize_flat, minimize_flat_from, minimize_flat_with,
    minimize_traced, minimize_with, select_elites, CeConfig, CeOutcome, CeTelemetry,
    EliteSelection, IterStats, StopReason,
};
pub use model::CeModel;
pub use models::assignment::AssignmentModel;
pub use models::bernoulli::BernoulliModel;
pub use models::gaussian::GaussianModel;
pub use models::permutation::PermutationModel;
pub use stochmatrix::StochasticMatrix;
