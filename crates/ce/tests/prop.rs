//! Property-based tests for the CE driver and models.

use match_ce::driver::{minimize, CeConfig};
use match_ce::model::CeModel;
use match_ce::models::bernoulli::BernoulliModel;
use match_ce::models::gaussian::GaussianModel;
use match_ce::models::permutation::PermutationModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the objective, the reported best cost is the minimum the
    /// driver ever evaluated — cross-checked by re-evaluating the best
    /// sample.
    #[test]
    fn best_cost_matches_best_sample(seed in any::<u64>(), dims in 2usize..10) {
        let mut model = BernoulliModel::uniform(dims);
        let cfg = CeConfig::with_sample_size(30);
        let mut rng = StdRng::seed_from_u64(seed);
        // A deterministic but arbitrary objective.
        let score = |s: &Vec<bool>| {
            s.iter().enumerate().map(|(i, &b)| if b { (i * i + 1) as f64 } else { 0.7 * i as f64 }).sum()
        };
        let out = minimize(&mut model, &cfg, &mut rng, score);
        prop_assert!((out.best_cost - score(&out.best_sample)).abs() < 1e-9);
        // Telemetry best curve ends at the reported best.
        let curve = out.telemetry.best_curve();
        prop_assert!((curve.last().unwrap() - out.best_cost).abs() < 1e-9);
    }

    /// The driver stops within max_iters and reports consistent counts.
    #[test]
    fn iteration_accounting(seed in any::<u64>(), n in 4usize..40, iters in 1usize..20) {
        let mut model = BernoulliModel::uniform(6);
        let mut cfg = CeConfig::with_sample_size(n);
        cfg.max_iters = iters;
        let mut rng = StdRng::seed_from_u64(seed);
        let out = minimize(&mut model, &cfg, &mut rng, |s: &Vec<bool>| {
            s.iter().filter(|&&b| b).count() as f64
        });
        prop_assert!(out.iterations >= 1 && out.iterations <= iters);
        prop_assert_eq!(out.evaluations, (out.iterations * n) as u64);
        prop_assert_eq!(out.telemetry.iters.len(), out.iterations);
    }

    /// Elite updates never break row-stochasticity of the permutation
    /// model under any zeta, even after many iterations.
    #[test]
    fn long_run_keeps_matrix_stochastic(seed in any::<u64>(), zeta in 0.05f64..=1.0) {
        let n = 6;
        let mut model = PermutationModel::uniform(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let elites: Vec<Vec<usize>> = (0..4)
                .map(|_| model.sample(&mut rng))
                .collect();
            model.update_from_elites(&elites, zeta);
        }
        for i in 0..n {
            let sum: f64 = model.matrix().row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "row {} sums {}", i, sum);
        }
        // Entropy never exceeds the uniform bound.
        prop_assert!(model.entropy() <= (n as f64).ln() + 1e-9);
    }

    /// Gaussian updates keep std non-negative and respect the floor.
    #[test]
    fn gaussian_std_bounded(seed in any::<u64>(), floor in 0.0f64..0.5, zeta in 0.1f64..=1.0) {
        let mut model = GaussianModel::isotropic(3, 0.0, 1.0).with_std_floor(floor);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let elites: Vec<Vec<f64>> = (0..5).map(|_| model.sample(&mut rng)).collect();
            model.update_from_elites(&elites, zeta);
        }
        for &s in model.std() {
            prop_assert!(s >= floor - 1e-12, "std {} below floor {}", s, floor);
            prop_assert!(s.is_finite());
        }
    }

    /// Degenerate models sample their mode (permutation family).
    #[test]
    fn degenerate_permutation_model_is_deterministic(seed in any::<u64>()) {
        let n = 5;
        let target = match_rngutil::random_permutation(n, &mut StdRng::seed_from_u64(seed));
        let mut data = vec![0.0; n * n];
        for (i, &j) in target.iter().enumerate() {
            data[i * n + j] = 1.0;
        }
        let model = PermutationModel::from_matrix(
            match_ce::StochasticMatrix::from_rows(n, n, data),
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
        for _ in 0..5 {
            prop_assert_eq!(model.sample(&mut rng), target.clone());
        }
        prop_assert_eq!(model.mode(), target);
    }
}
