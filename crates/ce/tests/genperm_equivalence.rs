//! Distributional equivalence of the two GenPerm sampling paths and of
//! the O(N) elite selection against its sorted reference.
//!
//! The alias+rejection sampler must draw the *same distribution* as the
//! restricted-roulette sampler (rejecting used columns over the full-row
//! alias table is exactly the conditional distribution the restricted
//! wheel spins), even though the two consume different RNG streams. We
//! check row-for-row assignment marginals with a two-sample chi-square
//! statistic over matched draw budgets.

use match_ce::batch::FlatSampler;
use match_ce::driver::{select_elites, EliteSelection};
use match_ce::model::CeModel;
use match_ce::models::permutation::PermutationModel;
use match_ce::StochasticMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-(row, column) assignment counts over `draws` permutations from the
/// legacy restricted-roulette path.
fn roulette_counts(model: &PermutationModel, draws: usize, seed: u64) -> Vec<u64> {
    let n = model.len();
    let mut counts = vec![0u64; n * n];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..draws {
        let perm = model.sample(&mut rng);
        for (i, &j) in perm.iter().enumerate() {
            counts[i * n + j] += 1;
        }
    }
    counts
}

/// Same counts via the alias+rejection flat path.
fn alias_counts(model: &PermutationModel, draws: usize, seed: u64) -> Vec<u64> {
    let n = model.len();
    let mut counts = vec![0u64; n * n];
    let mut tables = model.new_tables();
    model.fill_tables(&mut tables);
    let mut scratch = model.new_scratch();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0usize; n];
    for _ in 0..draws {
        model.sample_flat(&tables, &mut scratch, &mut rng, &mut out);
        for (i, &j) in out.iter().enumerate() {
            counts[i * n + j] += 1;
        }
    }
    counts
}

/// Two-sample chi-square statistic for one row's column marginal.
fn row_chi_square(a: &[u64], b: &[u64]) -> (f64, usize) {
    let mut chi = 0.0;
    let mut dof = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let total = (x + y) as f64;
        if total > 0.0 {
            let d = x as f64 - y as f64;
            chi += d * d / total;
            dof += 1;
        }
    }
    (chi, dof.saturating_sub(1))
}

fn model_from_weights(n: usize, weights: &[f64]) -> PermutationModel {
    PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, weights.to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Row-for-row, the alias+rejection GenPerm draws the same column
    /// marginals as the restricted-roulette GenPerm.
    #[test]
    fn alias_genperm_matches_roulette_genperm(
        seed in any::<u64>(),
        n in 3usize..7,
        raw in proptest::collection::vec(0.05f64..1.0, 49),
    ) {
        let model = model_from_weights(n, &raw[..n * n]);
        let draws = 4000;
        let a = roulette_counts(&model, draws, seed);
        let b = alias_counts(&model, draws, seed ^ 0x9E37_79B9);
        for i in 0..n {
            let (chi, dof) = row_chi_square(&a[i * n..(i + 1) * n], &b[i * n..(i + 1) * n]);
            // Mean of chi² is dof; a 5·dof + 24 bound is far out in the
            // tail for every dof here, so failures mean a real
            // distribution mismatch rather than sampling noise.
            prop_assert!(
                chi <= 5.0 * dof as f64 + 24.0,
                "row {} chi²={} dof={}", i, chi, dof
            );
        }
    }

    /// Spiky matrices (rows concentrating on few columns) force the
    /// rejection path through its bounded budget and into the roulette
    /// fallback; the marginals must still agree.
    #[test]
    fn alias_genperm_matches_roulette_on_spiky_rows(
        seed in any::<u64>(),
        n in 3usize..6,
        hot in 0usize..6,
    ) {
        let hot = hot % n;
        // Every row loads 0.9 mass on one shared column.
        let mut raw = vec![0.1 / (n as f64 - 1.0); n * n];
        for i in 0..n {
            raw[i * n + hot] = 0.9;
        }
        let model = model_from_weights(n, &raw);
        let draws = 4000;
        let a = roulette_counts(&model, draws, seed);
        let b = alias_counts(&model, draws, seed ^ 0x5851_F42D);
        for i in 0..n {
            let (chi, dof) = row_chi_square(&a[i * n..(i + 1) * n], &b[i * n..(i + 1) * n]);
            prop_assert!(
                chi <= 5.0 * dof as f64 + 24.0,
                "row {} chi²={} dof={}", i, chi, dof
            );
        }
    }

    /// `select_elites` agrees with the full stable sort on tie-heavy cost
    /// vectors: same γ, same elite index order, same best/worst.
    #[test]
    fn elite_selection_matches_sorted_reference(
        raw in proptest::collection::vec((0u8..6, 0.0f64..1.0), 1..60),
        target_frac in 0.01f64..1.0,
    ) {
        // Mix tie plateaus, infinities and distinct values.
        let costs: Vec<f64> = raw
            .iter()
            .map(|&(kind, v)| match kind {
                0..=2 => (kind % 3) as f64,  // heavy ties
                3 => f64::INFINITY,          // infeasible plateau
                _ => v,                      // distinct values
            })
            .collect();
        let n = costs.len();
        let target = ((target_frac * n as f64).floor() as usize).clamp(1, n);

        // Reference: the stable full sort the driver used to do.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            costs[a].partial_cmp(&costs[b]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let gamma = costs[order[target - 1]];
        let reference = EliteSelection {
            gamma,
            best: order[0],
            worst: costs[order[n - 1]],
            elites: order.iter().copied().take_while(|&i| costs[i] <= gamma).collect(),
        };

        let fast = select_elites(&costs, target);
        prop_assert_eq!(fast, reference);
    }
}

#[test]
fn conflicting_degenerate_rows_agree_across_paths() {
    // All rows demand column 0: both paths must fall back and produce
    // uniform-among-unused assignments that are valid permutations.
    let n = 4;
    let mut raw = vec![0.0; n * n];
    for i in 0..n {
        raw[i * n] = 1.0;
    }
    let model = model_from_weights(n, &raw);
    let draws = 2000;
    let a = roulette_counts(&model, draws, 11);
    let b = alias_counts(&model, draws, 12);
    for i in 0..n {
        let (chi, dof) = row_chi_square(&a[i * n..(i + 1) * n], &b[i * n..(i + 1) * n]);
        assert!(
            chi <= 5.0 * dof as f64 + 24.0,
            "row {i} chi²={chi} dof={dof}"
        );
    }
}
