//! Discrete-event simulation of a mapped application.
//!
//! The paper never *executes* the mapped application — its "application
//! execution time" (ET) is the analytic Eq. 2. This crate closes that
//! loop: it runs the iterative compute/exchange cycle of an overset-grid
//! style application (§2: grids compute, then exchange boundary data with
//! overlapping neighbours, repeatedly) on a simulated platform, under two
//! contention models:
//!
//! * [`SimMode::PaperSerial`] — each resource is a single server that
//!   executes its tasks' computations and outgoing transfers serially;
//!   receives are free. Under this model a resource's busy time per
//!   round is *exactly* `Exec_s` of Eq. 1 and the per-round makespan is
//!   Eq. 2 — the simulator cross-validates the cost model (and the unit
//!   tests assert the equality).
//! * [`SimMode::BlockingReceives`] — additionally, a task cannot start
//!   round `k+1` before all its round-`k` incoming messages have
//!   arrived. This couples the resources' timelines and yields the more
//!   realistic (≥ analytic) makespan.
//!
//! The engine is a classic event-driven simulator: a time-ordered event
//! heap of work-item completions, per-resource FIFO servers, and a
//! dependency table that unblocks waiting computations as transfers
//! finish ([`engine`], [`workload`]).
//!
//! [`dynamic`] adds the time axis: task arrival/departure event streams
//! drive warm-started incremental re-mapping epoch by epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod engine;
pub mod workload;

pub use dynamic::{
    run_dynamic, run_dynamic_untraced, DynamicConfig, DynamicReport, DynamicWorkload, EpochReport,
    TaskEvent,
};
pub use engine::{SimReport, TraceEntry};
pub use workload::{SimConfig, SimMode, Simulator};
