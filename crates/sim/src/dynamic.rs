//! Dynamic workloads: task arrival/departure streams driving
//! incremental re-mapping.
//!
//! The paper maps one static TIG once. Real applications churn: tasks
//! arrive and depart over time, and re-solving each epoch from scratch
//! both wastes the previous solution and ignores migration cost. This
//! module makes time a first-class axis:
//!
//! * [`DynamicWorkload`] holds a fixed task universe (`n` tasks on `n`
//!   resources, so mappings stay bijective across epochs) with an
//!   *active set*. A departed task's computation weight drops to a
//!   negligible epsilon and its interactions vanish; an arriving task
//!   gets its original weight and edges back.
//! * [`TaskEvent`] batches ([`DynamicWorkload::generate_events`])
//!   perturb the active set per epoch.
//! * [`run_dynamic`] drives epochs through
//!   [`match_core::remap_incremental`]: a cold solve at epoch 0, then
//!   warm incremental re-maps restricted to the changed subgraph (the
//!   event-touched tasks plus their TIG neighbours), with the
//!   migration-cost term `μ·Σ moved` reported separately.
//!
//! An epoch with an **empty** event batch is short-circuited: the prior
//! mapping and a fresh Eq. 2 evaluation are returned bit-identically to
//! not remapping at all — the metamorphic contract `match-verify` pins.

use match_core::{
    exec_time, remap_incremental, MappingInstance, RemapConfig, RemapOutcome, StopToken,
};
use match_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::Rng;

/// Computation weight of a departed task. `MappingInstance` requires
/// strictly positive weights; this is small enough to never influence a
/// mapping decision at paper weight scales.
pub const DEPARTED_EPS: f64 = 1e-6;

/// One arrival or departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEvent {
    /// Task re-enters the active set with its original weight and edges.
    Arrive(usize),
    /// Task leaves the active set.
    Depart(usize),
}

impl TaskEvent {
    /// The task this event touches.
    pub fn task(self) -> usize {
        match self {
            TaskEvent::Arrive(t) | TaskEvent::Depart(t) => t,
        }
    }
}

/// A fixed task universe with an active set that events toggle.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    task_comp: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
    proc_cost: Vec<f64>,
    link_cost: Vec<f64>,
    active: Vec<bool>,
}

impl DynamicWorkload {
    /// Capture a base instance; every task starts active.
    pub fn new(inst: &MappingInstance) -> Self {
        let n = inst.n_tasks();
        let mut edges = Vec::new();
        for t in 0..n {
            for (a, c) in inst.interactions(t) {
                if t < a {
                    edges.push((t as u32, a as u32, c));
                }
            }
        }
        let nr = inst.n_resources();
        let mut link_cost = Vec::with_capacity(nr * nr);
        for s in 0..nr {
            for b in 0..nr {
                link_cost.push(inst.link_cost(s, b));
            }
        }
        DynamicWorkload {
            task_comp: (0..n).map(|t| inst.computation(t)).collect(),
            edges,
            proc_cost: (0..nr).map(|s| inst.processing_cost(s)).collect(),
            link_cost,
            active: vec![true; n],
        }
    }

    /// Task-universe size.
    pub fn n(&self) -> usize {
        self.task_comp.len()
    }

    /// The current active set.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Number of currently active tasks.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Apply an event batch and return the **changed subgraph**: every
    /// touched task plus its TIG neighbours, deduplicated and sorted.
    /// Events that do not change state (arriving an active task,
    /// departing an inactive one, out-of-range ids) are ignored.
    pub fn apply(&mut self, events: &[TaskEvent]) -> Vec<usize> {
        let n = self.n();
        let mut touched = Vec::new();
        for &ev in events {
            let t = ev.task();
            if t >= n {
                continue;
            }
            match ev {
                TaskEvent::Arrive(_) if !self.active[t] => {
                    self.active[t] = true;
                    touched.push(t);
                }
                TaskEvent::Depart(_) if self.active[t] => {
                    self.active[t] = false;
                    touched.push(t);
                }
                _ => {}
            }
        }
        let mut changed = touched.clone();
        for &(u, v, _) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            if touched.contains(&u) {
                changed.push(v);
            }
            if touched.contains(&v) {
                changed.push(u);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// The current epoch's instance: departed tasks keep a negligible
    /// [`DEPARTED_EPS`] computation weight (the flattened instance
    /// requires positive weights) and lose their interactions.
    pub fn instance(&self) -> MappingInstance {
        let comp: Vec<f64> = self
            .task_comp
            .iter()
            .zip(&self.active)
            .map(|(&w, &a)| if a { w } else { DEPARTED_EPS })
            .collect();
        let edges: Vec<(u32, u32, f64)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(u, v, _)| self.active[u as usize] && self.active[v as usize])
            .collect();
        MappingInstance::from_parts(comp, &edges, self.proc_cost.clone(), self.link_cost.clone())
    }

    /// Draw up to `k` events: a uniformly-chosen task departs if active
    /// (never draining the active set below two) or arrives if not.
    /// Each task is touched at most once per batch.
    pub fn generate_events<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<TaskEvent> {
        let n = self.n();
        if n == 0 {
            return Vec::new();
        }
        let mut live = self.active_count();
        let mut seen = vec![false; n];
        let mut events = Vec::new();
        for _ in 0..k {
            let t = rng.random_range(0..n);
            if seen[t] {
                continue;
            }
            seen[t] = true;
            if self.active[t] {
                if live > 2 {
                    events.push(TaskEvent::Depart(t));
                    live -= 1;
                }
            } else {
                events.push(TaskEvent::Arrive(t));
                live += 1;
            }
        }
        events
    }
}

/// Tunables for [`run_dynamic`].
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Epochs to simulate (epoch 0 is the cold solve).
    pub epochs: usize,
    /// Events drawn per epoch after the first.
    pub events_per_epoch: usize,
    /// Incremental re-mapping configuration (strategy, α, μ, passes).
    pub remap: RemapConfig,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            epochs: 5,
            events_per_epoch: 3,
            remap: RemapConfig::default(),
        }
    }
}

/// One epoch's result.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Events applied this epoch.
    pub events: usize,
    /// Size of the changed subgraph handed to refinement.
    pub changed: usize,
    /// Active tasks after the batch.
    pub active: usize,
    /// The re-mapping outcome (cost, migrations, timings).
    pub outcome: RemapOutcome,
}

/// A full dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Per-epoch results, in order.
    pub epochs: Vec<EpochReport>,
}

impl DynamicReport {
    /// Total migrations across all epochs.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.outcome.migrated).sum()
    }
}

/// Drive `cfg.epochs` epochs of arrivals/departures over `base`,
/// re-mapping incrementally after each batch.
pub fn run_dynamic(
    base: &MappingInstance,
    cfg: &DynamicConfig,
    rng: &mut StdRng,
    recorder: &mut dyn Recorder,
) -> DynamicReport {
    let mut wl = DynamicWorkload::new(base);
    let mut prior: Option<Vec<usize>> = None;
    let mut epochs = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let events = if epoch == 0 {
            Vec::new()
        } else {
            wl.generate_events(cfg.events_per_epoch, rng)
        };
        let changed = wl.apply(&events);
        let outcome = match (&prior, events.is_empty() && epoch > 0) {
            (Some(p), true) => {
                // Nothing changed: bit-identical to not remapping.
                let inst = wl.instance();
                let cost = exec_time(&inst, p);
                RemapOutcome {
                    mapping: match_core::Mapping::new(p.clone()),
                    cost,
                    migrated: 0,
                    migration_cost: 0.0,
                    total: cost,
                    warm: true,
                    iterations: 0,
                    evaluations: 0,
                    elapsed: std::time::Duration::ZERO,
                }
            }
            _ => {
                let inst = wl.instance();
                remap_incremental(
                    &inst,
                    prior.as_deref(),
                    &changed,
                    &cfg.remap,
                    rng,
                    recorder,
                    &StopToken::never(),
                )
            }
        };
        prior = Some(outcome.mapping.as_slice().to_vec());
        epochs.push(EpochReport {
            epoch,
            events: events.len(),
            changed: changed.len(),
            active: wl.active_count(),
            outcome,
        });
    }
    DynamicReport { epochs }
}

/// [`run_dynamic`] without telemetry.
pub fn run_dynamic_untraced(
    base: &MappingInstance,
    cfg: &DynamicConfig,
    rng: &mut StdRng,
) -> DynamicReport {
    run_dynamic(base, cfg, rng, &mut NullRecorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::{MatchConfig, RemapStrategy};
    use match_graph::gen::InstanceGenerator;
    use rand::SeedableRng;

    fn base(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    fn quick_cfg() -> DynamicConfig {
        DynamicConfig {
            epochs: 4,
            events_per_epoch: 3,
            remap: RemapConfig {
                match_config: MatchConfig {
                    threads: 1,
                    max_iters: 20,
                    ..MatchConfig::default()
                },
                strategy: RemapStrategy::RefineOnly,
                mu: 1.0,
                ..RemapConfig::default()
            },
        }
    }

    #[test]
    fn departed_tasks_lose_their_edges() {
        let inst = base(8, 1);
        let mut wl = DynamicWorkload::new(&inst);
        let before = wl.instance();
        let changed = wl.apply(&[TaskEvent::Depart(3)]);
        assert!(changed.contains(&3));
        let after = wl.instance();
        assert_eq!(after.computation(3), DEPARTED_EPS);
        assert_eq!(after.interactions(3).count(), 0);
        assert!(before.interactions(3).count() > 0 || inst.degree(3) == 0);
        // Arrive restores the original weight and edges.
        wl.apply(&[TaskEvent::Arrive(3)]);
        let restored = wl.instance();
        assert_eq!(restored.computation(3), inst.computation(3));
        assert_eq!(
            restored.interactions(3).count(),
            inst.interactions(3).count()
        );
    }

    #[test]
    fn changed_set_includes_neighbours() {
        let inst = base(10, 2);
        let mut wl = DynamicWorkload::new(&inst);
        let neighbours: Vec<usize> = inst.interactions(0).map(|(a, _)| a).collect();
        let changed = wl.apply(&[TaskEvent::Depart(0)]);
        for a in neighbours {
            assert!(
                changed.contains(&a),
                "neighbour {a} missing from {changed:?}"
            );
        }
    }

    #[test]
    fn noop_events_are_ignored() {
        let inst = base(6, 3);
        let mut wl = DynamicWorkload::new(&inst);
        assert!(wl.apply(&[TaskEvent::Arrive(2)]).is_empty()); // already active
        wl.apply(&[TaskEvent::Depart(2)]);
        assert!(wl.apply(&[TaskEvent::Depart(2)]).is_empty()); // already gone
        assert!(wl.apply(&[TaskEvent::Depart(99)]).is_empty()); // out of range
    }

    #[test]
    fn generate_events_never_drains_the_active_set() {
        let inst = base(6, 4);
        let mut wl = DynamicWorkload::new(&inst);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let evs = wl.generate_events(6, &mut rng);
            wl.apply(&evs);
            assert!(wl.active_count() >= 2);
        }
    }

    #[test]
    fn dynamic_run_produces_valid_epochs() {
        let inst = base(10, 6);
        let report = run_dynamic_untraced(&inst, &quick_cfg(), &mut StdRng::seed_from_u64(7));
        assert_eq!(report.epochs.len(), 4);
        // Epoch 0 is the cold solve.
        assert!(!report.epochs[0].outcome.warm);
        assert_eq!(report.epochs[0].outcome.migrated, 0);
        for e in &report.epochs {
            assert!(e.outcome.mapping.is_permutation());
            assert!(e.outcome.cost.is_finite());
            assert_eq!(
                e.outcome.total.to_bits(),
                (e.outcome.cost + e.outcome.migration_cost).to_bits()
            );
        }
        // Epochs after the first reuse the prior.
        assert!(report.epochs[1..].iter().all(|e| e.outcome.warm));
    }

    #[test]
    fn empty_batch_epoch_is_bit_identical_to_prior() {
        let inst = base(9, 8);
        let cfg = DynamicConfig {
            epochs: 3,
            events_per_epoch: 0, // every post-cold epoch is an empty batch
            ..quick_cfg()
        };
        let report = run_dynamic_untraced(&inst, &cfg, &mut StdRng::seed_from_u64(9));
        let first = &report.epochs[0].outcome;
        for e in &report.epochs[1..] {
            assert_eq!(e.outcome.mapping, first.mapping);
            assert_eq!(e.outcome.cost.to_bits(), first.cost.to_bits());
            assert_eq!(e.outcome.migrated, 0);
            assert_eq!(e.outcome.evaluations, 0);
        }
    }

    #[test]
    fn dynamic_run_is_deterministic_per_seed() {
        let inst = base(8, 10);
        let a = run_dynamic_untraced(&inst, &quick_cfg(), &mut StdRng::seed_from_u64(11));
        let b = run_dynamic_untraced(&inst, &quick_cfg(), &mut StdRng::seed_from_u64(11));
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.outcome.mapping, y.outcome.mapping);
            assert_eq!(x.outcome.cost.to_bits(), y.outcome.cost.to_bits());
            assert_eq!(x.outcome.migrated, y.outcome.migrated);
        }
    }
}
