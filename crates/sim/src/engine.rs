//! The event-driven core: work items, per-resource FIFO servers, and the
//! completion-event heap.
//!
//! Resources are single servers processing an ordered list of work items
//! (computations and outgoing transfers). An item may carry
//! dependencies — transfers that must complete before it can start
//! (blocking-receive semantics). A resource whose head item is not yet
//! ready idles (head-of-line blocking) until the last dependency's
//! completion event releases it.

use match_telemetry::{Event, NullRecorder, Recorder, SpanEvent, SIM_SPAN_TIME_SCALE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable unit on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// Task `task` computes for round `round`.
    Compute {
        /// The computing task.
        task: usize,
        /// The iteration index.
        round: usize,
    },
    /// Task `from` sends its round-`round` boundary data to task `to`.
    Transfer {
        /// Sending task.
        from: usize,
        /// Receiving task.
        to: usize,
        /// The iteration index.
        round: usize,
    },
}

/// A work item: what, where, how long.
#[derive(Debug, Clone, Copy)]
pub struct WorkItem {
    /// What kind of work.
    pub kind: ItemKind,
    /// Executing resource.
    pub resource: usize,
    /// Service time.
    pub duration: f64,
}

/// One executed item in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// What ran.
    pub kind: ItemKind,
    /// Where it ran.
    pub resource: usize,
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
}

/// Simulation results.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last item.
    pub makespan: f64,
    /// Total service time per resource.
    pub busy: Vec<f64>,
    /// Completion events processed.
    pub events: u64,
    /// Largest completion-event heap depth observed (always tracked;
    /// it is one comparison per push).
    pub peak_queue_depth: u64,
    /// Per-item execution trace (when requested).
    pub trace: Option<Vec<TraceEntry>>,
}

impl SimReport {
    /// Idle time per resource: `makespan − busy`.
    pub fn idle(&self) -> Vec<f64> {
        self.busy.iter().map(|b| self.makespan - b).collect()
    }

    /// Mean utilisation across resources (`0..=1`), `NaN` when the
    /// simulation was empty.
    pub fn mean_utilization(&self) -> f64 {
        if self.busy.is_empty() || self.makespan <= 0.0 {
            return f64::NAN;
        }
        self.busy.iter().sum::<f64>() / (self.makespan * self.busy.len() as f64)
    }
}

/// Totally ordered event time (f64 via `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Run the simulation.
///
/// * `items_per_resource[r]` — the FIFO work list of resource `r`.
/// * `deps` — for global item id `(r, idx)` (flattened by the caller via
///   `id = base[r] + idx`), the number of prerequisite transfers that
///   must complete first.
/// * `dependents[id]` — global item ids whose dependency count drops
///   when item `id` completes.
///
/// Caller builds the workload; see [`crate::workload`].
pub fn simulate(
    items_per_resource: &[Vec<WorkItem>],
    deps: Vec<u32>,
    dependents: &[Vec<usize>],
    record_trace: bool,
) -> SimReport {
    simulate_traced(
        items_per_resource,
        deps,
        dependents,
        record_trace,
        &mut NullRecorder,
    )
}

/// [`simulate`] with telemetry: samples the completion-event heap depth
/// as a `queue_depth` gauge every 64 processed events (plus once at the
/// start), so a trace shows how much concurrency the workload sustains.
/// Peak depth is tracked unconditionally and reported in
/// [`SimReport::peak_queue_depth`].
///
/// Each completed item additionally emits a `res{r}:busy` span, and each
/// head-of-line stall a `res{r}:idle` span, with the span's `iter` field
/// carrying the start time and `wall_ns` the width — both in simulated
/// units scaled by [`SIM_SPAN_TIME_SCALE`]. Together they reconstruct
/// the full per-resource schedule timeline (see the Gantt renderer in
/// `match-viz`).
pub fn simulate_traced(
    items_per_resource: &[Vec<WorkItem>],
    mut deps: Vec<u32>,
    dependents: &[Vec<usize>],
    record_trace: bool,
    recorder: &mut dyn Recorder,
) -> SimReport {
    let n_res = items_per_resource.len();
    // Global id layout: resource-major.
    let mut base = vec![0usize; n_res + 1];
    for r in 0..n_res {
        base[r + 1] = base[r] + items_per_resource[r].len();
    }
    let total_items = base[n_res];
    assert_eq!(deps.len(), total_items, "deps length mismatch");
    assert_eq!(dependents.len(), total_items, "dependents length mismatch");

    let item = |id: usize| -> &WorkItem {
        let r = match base.binary_search(&id) {
            Ok(r) => {
                // `id` equals a base: it is the first item of resource r
                // unless that resource is empty; advance past empties.
                let mut r = r;
                while r < n_res && base[r + 1] == id {
                    r += 1;
                }
                r
            }
            Err(ins) => ins - 1,
        };
        &items_per_resource[r][id - base[r]]
    };

    // Per-resource progress.
    let mut next_idx = vec![0usize; n_res]; // next item position
    let mut running = vec![false; n_res];
    let mut busy = vec![0.0f64; n_res];
    let mut last_end = vec![0.0f64; n_res]; // per-resource timeline cursor
    let mut clock = 0.0f64;
    let mut events: u64 = 0;
    let mut peak_queue_depth: u64 = 0;
    let traced = recorder.enabled();
    let mut trace = if record_trace { Some(Vec::new()) } else { None };

    // Completion-event heap: (time, resource, global item id).
    let mut heap: BinaryHeap<Reverse<(Time, usize, usize)>> = BinaryHeap::new();

    // Try to start the head item of resource `r` at time `now`.
    macro_rules! try_start {
        ($r:expr, $now:expr) => {{
            let r = $r;
            if !running[r] && next_idx[r] < items_per_resource[r].len() {
                let id = base[r] + next_idx[r];
                if deps[id] == 0 {
                    let it = &items_per_resource[r][next_idx[r]];
                    let end = $now + it.duration;
                    running[r] = true;
                    heap.push(Reverse((Time(end), r, id)));
                    peak_queue_depth = peak_queue_depth.max(heap.len() as u64);
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEntry {
                            kind: it.kind,
                            resource: r,
                            start: $now,
                            end,
                        });
                    }
                }
            }
        }};
    }

    for r in 0..n_res {
        try_start!(r, 0.0);
    }

    while let Some(Reverse((Time(t), r, id))) = heap.pop() {
        events += 1;
        // Depth at processing time, counting the event just popped.
        if traced && events % 64 == 1 {
            recorder.record(Event::Sample {
                name: "queue_depth".into(),
                value: heap.len() as u64 + 1,
            });
        }
        clock = clock.max(t);
        let duration = item(id).duration;
        busy[r] += duration;
        if traced {
            // Busy/idle spans: simulated time, scaled to integers.
            let scale = |x: f64| (x * SIM_SPAN_TIME_SCALE).round() as u64;
            let start = t - duration;
            let gap = scale(start - last_end[r]);
            if gap > 0 {
                recorder.record(Event::Span(SpanEvent {
                    name: format!("res{r}:idle").into(),
                    iter: scale(last_end[r]),
                    wall_ns: gap,
                }));
            }
            recorder.record(Event::Span(SpanEvent {
                name: format!("res{r}:busy").into(),
                iter: scale(start),
                wall_ns: scale(duration),
            }));
            last_end[r] = t;
        }
        running[r] = false;
        next_idx[r] += 1;
        // Release dependents.
        for &d in &dependents[id] {
            debug_assert!(deps[d] > 0, "dependency underflow");
            deps[d] -= 1;
            if deps[d] == 0 {
                // The owner might be idle-waiting on exactly this item.
                let owner = owner_of(&base, d, n_res);
                if !running[owner] && base[owner] + next_idx[owner] == d {
                    try_start!(owner, t);
                }
            }
        }
        // Continue this resource's queue.
        try_start!(r, t);
    }

    // Every item must have run; a leftover means a dependency cycle.
    for r in 0..n_res {
        assert_eq!(
            next_idx[r],
            items_per_resource[r].len(),
            "resource {r} deadlocked (dependency cycle in workload)"
        );
    }

    SimReport {
        makespan: clock,
        busy,
        events,
        peak_queue_depth,
        trace,
    }
}

fn owner_of(base: &[usize], id: usize, n_res: usize) -> usize {
    match base.binary_search(&id) {
        Ok(r) => {
            let mut r = r;
            while r < n_res && base[r + 1] == id {
                r += 1;
            }
            r
        }
        Err(ins) => ins - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(task: usize, resource: usize, duration: f64) -> WorkItem {
        WorkItem {
            kind: ItemKind::Compute { task, round: 0 },
            resource,
            duration,
        }
    }

    #[test]
    fn single_resource_serial_execution() {
        let items = vec![vec![compute(0, 0, 2.0), compute(1, 0, 3.0)]];
        let deps = vec![0, 0];
        let dependents = vec![vec![], vec![]];
        let rep = simulate(&items, deps, dependents.as_slice(), true);
        assert_eq!(rep.makespan, 5.0);
        assert_eq!(rep.busy, vec![5.0]);
        assert_eq!(rep.events, 2);
        let trace = rep.trace.unwrap();
        assert_eq!(trace[0].start, 0.0);
        assert_eq!(trace[0].end, 2.0);
        assert_eq!(trace[1].start, 2.0);
        assert_eq!(trace[1].end, 5.0);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let items = vec![
            vec![compute(0, 0, 4.0)],
            vec![compute(1, 1, 7.0)],
            vec![compute(2, 2, 1.0)],
        ];
        let rep = simulate(&items, vec![0, 0, 0], &[vec![], vec![], vec![]], false);
        assert_eq!(rep.makespan, 7.0);
        assert_eq!(rep.busy, vec![4.0, 7.0, 1.0]);
        assert_eq!(rep.idle(), vec![3.0, 0.0, 6.0]);
    }

    #[test]
    fn dependency_delays_start() {
        // r0: item A (3.0). r1: item B (1.0) depends on A.
        let items = vec![vec![compute(0, 0, 3.0)], vec![compute(1, 1, 1.0)]];
        let deps = vec![0, 1];
        let dependents = vec![vec![1], vec![]]; // A releases B
        let rep = simulate(&items, deps, dependents.as_slice(), true);
        assert_eq!(rep.makespan, 4.0);
        let trace = rep.trace.unwrap();
        let b = trace.iter().find(|e| e.resource == 1).unwrap();
        assert_eq!(b.start, 3.0);
        assert_eq!(b.end, 4.0);
    }

    #[test]
    fn head_of_line_blocking() {
        // r1's first item depends on r0's 5.0 item; its second is free
        // but must wait behind the head (FIFO server).
        let items = vec![
            vec![compute(0, 0, 5.0)],
            vec![compute(1, 1, 1.0), compute(2, 1, 1.0)],
        ];
        let deps = vec![0, 1, 0];
        let dependents = vec![vec![1], vec![], vec![]];
        let rep = simulate(&items, deps, dependents.as_slice(), false);
        assert_eq!(rep.makespan, 7.0);
        assert_eq!(rep.busy[1], 2.0);
    }

    #[test]
    fn zero_duration_items() {
        let items = vec![vec![compute(0, 0, 0.0), compute(1, 0, 2.0)]];
        let rep = simulate(&items, vec![0, 0], &[vec![], vec![]], false);
        assert_eq!(rep.makespan, 2.0);
    }

    #[test]
    fn empty_simulation() {
        let rep = simulate(&[vec![], vec![]], vec![], &[], false);
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.events, 0);
        assert!(rep.mean_utilization().is_nan());
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn cycle_detected() {
        // Two items depending on each other across resources.
        let items = vec![vec![compute(0, 0, 1.0)], vec![compute(1, 1, 1.0)]];
        let deps = vec![1, 1];
        let dependents = vec![vec![1], vec![0]];
        simulate(&items, deps, dependents.as_slice(), false);
    }

    #[test]
    fn peak_queue_depth_tracks_concurrency() {
        // Three independent resources start simultaneously: all three
        // completion events coexist in the heap.
        let items = vec![
            vec![compute(0, 0, 4.0)],
            vec![compute(1, 1, 7.0)],
            vec![compute(2, 2, 1.0)],
        ];
        let rep = simulate(&items, vec![0, 0, 0], &[vec![], vec![], vec![]], false);
        assert_eq!(rep.peak_queue_depth, 3);
        // A serial chain never holds more than one event.
        let serial = vec![vec![compute(0, 0, 2.0), compute(1, 0, 3.0)]];
        let rep = simulate(&serial, vec![0, 0], &[vec![], vec![]], false);
        assert_eq!(rep.peak_queue_depth, 1);
    }

    #[test]
    fn queue_depth_is_sampled_when_traced() {
        use match_telemetry::MemoryRecorder;
        let items = vec![
            vec![compute(0, 0, 1.0), compute(1, 0, 1.0)],
            vec![compute(2, 1, 5.0)],
        ];
        let mut rec = MemoryRecorder::new();
        let rep = simulate_traced(
            &items,
            vec![0, 0, 0],
            &[vec![], vec![], vec![]],
            false,
            &mut rec,
        );
        let depth = rec.gauge_hist("queue_depth").expect("gauge recorded");
        assert_eq!(depth.count(), 1, "3 events => one sample at event 1");
        assert!(depth.max() <= rep.peak_queue_depth);
    }

    #[test]
    fn busy_and_idle_spans_reconstruct_the_timeline() {
        use match_telemetry::MemoryRecorder;
        // r0: item A (3.0). r1: item B (1.0) depends on A, so r1 idles
        // for 3.0 units before its only busy span.
        let items = vec![vec![compute(0, 0, 3.0)], vec![compute(1, 1, 1.0)]];
        let mut rec = MemoryRecorder::new();
        let rep = simulate_traced(&items, vec![0, 1], &[vec![1], vec![]], false, &mut rec);
        assert_eq!(rep.makespan, 4.0);
        let spans: Vec<&SpanEvent> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        let scale = |x: f64| (x * SIM_SPAN_TIME_SCALE).round() as u64;
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name}"))
        };
        let a = find("res0:busy");
        assert_eq!((a.iter, a.wall_ns), (0, scale(3.0)));
        let gap = find("res1:idle");
        assert_eq!((gap.iter, gap.wall_ns), (0, scale(3.0)));
        let b = find("res1:busy");
        assert_eq!((b.iter, b.wall_ns), (scale(3.0), scale(1.0)));
        // No spurious idle span on the resource that never waited.
        assert!(!spans.iter().any(|s| s.name == "res0:idle"));
    }

    #[test]
    fn spans_only_emitted_when_traced() {
        let items = vec![vec![compute(0, 0, 3.0)], vec![compute(1, 1, 1.0)]];
        // NullRecorder path (plain `simulate`): must not panic and must
        // produce the same report as the traced run.
        let rep = simulate(&items, vec![0, 1], &[vec![1], vec![]], false);
        assert_eq!(rep.makespan, 4.0);
    }

    #[test]
    fn utilization_bounds() {
        let items = vec![vec![compute(0, 0, 2.0)], vec![compute(1, 1, 4.0)]];
        let rep = simulate(&items, vec![0, 0], &[vec![], vec![]], false);
        let u = rep.mean_utilization();
        assert!(u > 0.0 && u <= 1.0);
        assert!((u - (2.0 + 4.0) / (4.0 * 2.0)).abs() < 1e-12);
    }
}
