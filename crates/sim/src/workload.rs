//! The iterative compute/exchange workload of an overset-grid
//! application, and the [`Simulator`] front end.
//!
//! Per round, every task computes over its grid points (`W^t × w_s` time
//! units on its resource) and then ships its boundary data to each
//! overlapping neighbour (`C^{t,a} × c_{s,b}` time units on the sender's
//! resource; free when co-located). Rounds repeat `rounds` times — the
//! outer iterations of the CFD solver the paper's §2 describes.

use crate::engine::{simulate_traced, ItemKind, SimReport, WorkItem};
use match_core::{Mapping, MappingInstance};
use match_telemetry::{Event, NullRecorder, Recorder};

/// Contention model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Each resource serialises its tasks' computations and outgoing
    /// transfers; receives are free. Per-round busy time equals Eq. 1.
    PaperSerial,
    /// Additionally, a task's round-`k+1` computation waits for all of
    /// its round-`k` incoming messages.
    BlockingReceives,
    /// Most realistic: transfers execute on per-resource-pair *channel*
    /// servers instead of the sender (so a resource's sends can overlap
    /// its computation, but messages sharing a channel serialise), a
    /// transfer starts only after its sender's computation of that
    /// round, and receives block the next round as in
    /// [`SimMode::BlockingReceives`]. Channel busy time is reported in
    /// the extra `busy` entries after the physical resources.
    LinkContention,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of compute/exchange rounds.
    pub rounds: usize,
    /// Contention model.
    pub mode: SimMode,
    /// Record a full execution trace (costs memory proportional to the
    /// item count).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 1,
            mode: SimMode::PaperSerial,
            trace: false,
        }
    }
}

/// Simulates a mapped instance.
///
/// ```
/// use match_core::{exec_time, Mapping, MappingInstance};
/// use match_graph::gen::InstanceGenerator;
/// use match_sim::{SimConfig, Simulator};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let pair = InstanceGenerator::paper_family(5).generate(&mut rng);
/// let inst = MappingInstance::from_pair(&pair);
/// let mapping = Mapping::identity(5);
///
/// // One compute/exchange round in the paper's serial model equals Eq. 2.
/// let report = Simulator::new(&inst, SimConfig::default()).run(&mapping);
/// let analytic = exec_time(&inst, mapping.as_slice());
/// assert!((report.makespan - analytic).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    inst: &'a MappingInstance,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Build a simulator over an instance.
    pub fn new(inst: &'a MappingInstance, config: SimConfig) -> Self {
        Simulator { inst, config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Execute `mapping` and report timings.
    pub fn run(&self, mapping: &Mapping) -> SimReport {
        self.run_traced(mapping, &mut NullRecorder)
    }

    /// [`Simulator::run`] with telemetry: records the workload size as
    /// `sim_items` and `sim_servers` counters, then samples the event
    /// queue depth during execution (see
    /// [`crate::engine::simulate_traced`]).
    pub fn run_traced(&self, mapping: &Mapping, recorder: &mut dyn Recorder) -> SimReport {
        let inst = self.inst;
        assert_eq!(
            mapping.len(),
            inst.n_tasks(),
            "mapping does not cover the instance's tasks"
        );
        let n_res = inst.n_resources();
        let assign = mapping.as_slice();
        let rounds = self.config.rounds;
        let link_mode = self.config.mode == SimMode::LinkContention;

        // Server layout: physical resources 0..n_res; in link-contention
        // mode, one channel server per unordered resource pair after
        // them.
        let channel_of = |s: usize, b: usize| -> usize {
            let (lo, hi) = if s < b { (s, b) } else { (b, s) };
            // Index into the strict upper triangle.
            n_res + lo * n_res + hi - (lo + 1) * (lo + 2) / 2
        };
        let n_servers = if link_mode {
            n_res + n_res * n_res.saturating_sub(1) / 2
        } else {
            n_res
        };

        // Build each server's FIFO list, server-major ids. Items are
        // ordered by round, then task id, compute before its transfers —
        // a fixed deterministic service order.
        let mut items: Vec<Vec<WorkItem>> = vec![Vec::new(); n_servers];
        // (task, round) -> (server, index) of its compute item.
        let mut compute_pos: Vec<Vec<(usize, usize)>> =
            vec![vec![(usize::MAX, usize::MAX); rounds]; inst.n_tasks()];
        // (server, index) of every transfer, with its sender's round
        // compute recorded for the link-mode dependency.
        let mut transfer_pos: Vec<((usize, usize), (usize, usize))> = Vec::new();

        #[allow(clippy::needless_range_loop)] // round indexes per-task round slots
        for round in 0..rounds {
            for t in 0..inst.n_tasks() {
                let s = assign[t];
                compute_pos[t][round] = (s, items[s].len());
                items[s].push(WorkItem {
                    kind: ItemKind::Compute { task: t, round },
                    resource: s,
                    duration: inst.computation(t) * inst.processing_cost(s),
                });
                for (a, c) in inst.interactions(t) {
                    let b = assign[a];
                    let duration = if b == s {
                        0.0
                    } else {
                        c * inst.link_cost(s, b)
                    };
                    // Local exchanges stay on the resource; remote ones
                    // go to the channel server in link mode.
                    let server = if link_mode && b != s {
                        channel_of(s, b)
                    } else {
                        s
                    };
                    let pos = (server, items[server].len());
                    items[server].push(WorkItem {
                        kind: ItemKind::Transfer {
                            from: t,
                            to: a,
                            round,
                        },
                        resource: server,
                        duration,
                    });
                    if link_mode && b != s {
                        transfer_pos.push((pos, compute_pos[t][round]));
                    }
                }
            }
        }

        let mut base = vec![0usize; n_servers + 1];
        for r in 0..n_servers {
            base[r + 1] = base[r] + items[r].len();
        }
        let total = base[n_servers];
        let gid = |(r, idx): (usize, usize)| base[r] + idx;

        let mut deps = vec![0u32; total];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];

        if self.config.mode != SimMode::PaperSerial {
            // Transfer(from → to, round) gates Compute(to, round + 1).
            for r in 0..n_servers {
                for (idx, it) in items[r].iter().enumerate() {
                    if let ItemKind::Transfer { to, round, .. } = it.kind {
                        if round + 1 < rounds {
                            let target = gid(compute_pos[to][round + 1]);
                            deps[target] += 1;
                            dependents[gid((r, idx))].push(target);
                        }
                    }
                }
            }
        }
        if link_mode {
            // A channel transfer starts only after its sender computed.
            for &(tpos, cpos) in &transfer_pos {
                deps[gid(tpos)] += 1;
                dependents[gid(cpos)].push(gid(tpos));
            }
        }

        if recorder.enabled() {
            recorder.record(Event::Counter {
                name: "sim_items".into(),
                value: total as u64,
            });
            recorder.record(Event::Counter {
                name: "sim_servers".into(),
                value: n_servers as u64,
            });
        }
        simulate_traced(&items, deps, &dependents, self.config.trace, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::{exec_per_resource, exec_time};
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::perm::random_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + b.abs())
    }

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn paper_mode_busy_time_equals_eq1() {
        // The headline cross-validation: simulated per-resource busy time
        // per round must equal the analytic Exec_s of Eq. 1, and the
        // makespan must equal rounds × Eq. 2.
        let inst = instance(12, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let m = Mapping::new(random_permutation(12, &mut rng));
            let rep = Simulator::new(&inst, SimConfig::default()).run(&m);
            let analytic = exec_per_resource(&inst, m.as_slice());
            for (s, (&sim, &ana)) in rep.busy.iter().zip(&analytic).enumerate() {
                assert!(close(sim, ana), "resource {s}: sim {sim} vs Eq.1 {ana}");
            }
            assert!(close(rep.makespan, exec_time(&inst, m.as_slice())));
        }
    }

    #[test]
    fn paper_mode_scales_linearly_with_rounds() {
        let inst = instance(10, 3);
        let m = Mapping::identity(10);
        let one = Simulator::new(
            &inst,
            SimConfig {
                rounds: 1,
                ..Default::default()
            },
        )
        .run(&m);
        let five = Simulator::new(
            &inst,
            SimConfig {
                rounds: 5,
                ..Default::default()
            },
        )
        .run(&m);
        assert!(close(five.makespan, 5.0 * one.makespan));
        for s in 0..10 {
            assert!(close(five.busy[s], 5.0 * one.busy[s]));
        }
    }

    #[test]
    fn blocking_mode_never_faster() {
        let inst = instance(10, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let m = Mapping::new(random_permutation(10, &mut rng));
            let cfg_p = SimConfig {
                rounds: 4,
                mode: SimMode::PaperSerial,
                trace: false,
            };
            let cfg_b = SimConfig {
                rounds: 4,
                mode: SimMode::BlockingReceives,
                trace: false,
            };
            let p = Simulator::new(&inst, cfg_p).run(&m);
            let b = Simulator::new(&inst, cfg_b).run(&m);
            assert!(
                b.makespan >= p.makespan - 1e-9,
                "blocking {} < serial {}",
                b.makespan,
                p.makespan
            );
        }
    }

    #[test]
    fn blocking_single_round_equals_paper() {
        // With one round there are no cross-round dependencies.
        let inst = instance(8, 6);
        let m = Mapping::identity(8);
        let p = Simulator::new(
            &inst,
            SimConfig {
                rounds: 1,
                mode: SimMode::PaperSerial,
                trace: false,
            },
        )
        .run(&m);
        let b = Simulator::new(
            &inst,
            SimConfig {
                rounds: 1,
                mode: SimMode::BlockingReceives,
                trace: false,
            },
        )
        .run(&m);
        assert!(close(b.makespan, p.makespan));
    }

    #[test]
    fn link_contention_reports_channel_servers() {
        let inst = instance(6, 20);
        let m = Mapping::identity(6);
        let cfg = SimConfig {
            rounds: 2,
            mode: SimMode::LinkContention,
            trace: true,
        };
        let rep = Simulator::new(&inst, cfg).run(&m);
        // 6 resources + C(6,2) = 15 channels.
        assert_eq!(rep.busy.len(), 6 + 15);
        assert!(rep.makespan > 0.0);
        // Physical resources only compute (plus free local exchanges).
        for s in 0..6 {
            let pure_compute = 2.0 * inst.computation(s) * inst.processing_cost(s);
            assert!(
                close(rep.busy[s], pure_compute),
                "resource {s}: {} vs {}",
                rep.busy[s],
                pure_compute
            );
        }
        // Total channel busy time equals the total communication cost of
        // Eq. 1 (each transfer appears once, on its channel).
        let analytic = exec_per_resource(&inst, m.as_slice());
        let total_comm_eq1: f64 = analytic
            .iter()
            .enumerate()
            .map(|(s, &l)| l - inst.computation(s) * inst.processing_cost(s))
            .sum();
        let total_channel: f64 = rep.busy[6..].iter().sum();
        assert!(
            close(total_channel, 2.0 * total_comm_eq1),
            "channels {} vs 2 rounds × Eq.1 comm {}",
            total_channel,
            2.0 * total_comm_eq1
        );
    }

    #[test]
    fn link_contention_can_beat_serial_sends() {
        // With sends offloaded to channels, resources overlap compute
        // with communication: makespan should usually drop below the
        // paper-serial model on communication-heavy mappings.
        let inst = instance(10, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut link_wins = 0;
        for _ in 0..5 {
            let m = Mapping::new(random_permutation(10, &mut rng));
            let serial = Simulator::new(
                &inst,
                SimConfig {
                    rounds: 3,
                    mode: SimMode::PaperSerial,
                    trace: false,
                },
            )
            .run(&m);
            let link = Simulator::new(
                &inst,
                SimConfig {
                    rounds: 3,
                    mode: SimMode::LinkContention,
                    trace: false,
                },
            )
            .run(&m);
            assert!(link.makespan > 0.0);
            if link.makespan <= serial.makespan {
                link_wins += 1;
            }
        }
        assert!(link_wins >= 3, "link contention won only {link_wins}/5");
    }

    #[test]
    fn link_contention_single_round_no_deadlock() {
        let inst = instance(8, 23);
        let m = Mapping::identity(8);
        let cfg = SimConfig {
            rounds: 1,
            mode: SimMode::LinkContention,
            trace: false,
        };
        let rep = Simulator::new(&inst, cfg).run(&m);
        assert!(rep.makespan.is_finite());
        assert!(rep.events > 0);
    }

    #[test]
    fn trace_is_consistent() {
        let inst = instance(6, 7);
        let m = Mapping::identity(6);
        let cfg = SimConfig {
            rounds: 2,
            mode: SimMode::BlockingReceives,
            trace: true,
        };
        let rep = Simulator::new(&inst, cfg).run(&m);
        let trace = rep.trace.as_ref().unwrap();
        // Every entry well-formed; per-resource entries non-overlapping
        // and in order.
        let mut last_end = [0.0f64; 6];
        for e in trace {
            assert!(e.end >= e.start);
            assert!(
                e.start >= last_end[e.resource] - 1e-12,
                "overlap on {}",
                e.resource
            );
            last_end[e.resource] = e.end;
        }
        // Makespan equals the max trace end.
        let max_end = trace.iter().map(|e| e.end).fold(0.0, f64::max);
        assert!(close(rep.makespan, max_end));
        // Item count: rounds × (n computes + 2|E| transfers).
        let expected = 2 * (6 + inst.adjacency_len());
        assert_eq!(trace.len(), expected);
    }

    #[test]
    fn colocated_transfers_are_free() {
        let inst = instance(5, 8);
        let all_on_0 = Mapping::new(vec![0; 5]);
        let rep = Simulator::new(&inst, SimConfig::default()).run(&all_on_0);
        // Only compute time accrues on resource 0.
        let expected: f64 = (0..5)
            .map(|t| inst.computation(t) * inst.processing_cost(0))
            .sum();
        assert!(close(rep.busy[0], expected));
        for s in 1..5 {
            assert_eq!(rep.busy[s], 0.0);
        }
    }

    #[test]
    fn zero_rounds_is_empty() {
        let inst = instance(4, 9);
        let rep = Simulator::new(
            &inst,
            SimConfig {
                rounds: 0,
                ..Default::default()
            },
        )
        .run(&Mapping::identity(4));
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.events, 0);
    }

    #[test]
    fn traced_run_records_workload_counters() {
        use match_telemetry::MemoryRecorder;
        let inst = instance(8, 30);
        let m = Mapping::identity(8);
        let cfg = SimConfig {
            rounds: 3,
            mode: SimMode::BlockingReceives,
            trace: false,
        };
        let mut rec = MemoryRecorder::new();
        let rep = Simulator::new(&inst, cfg).run_traced(&m, &mut rec);
        // rounds × (n computes + 2|E| transfers) items on n servers.
        assert_eq!(
            rec.counter("sim_items"),
            3 * (8 + inst.adjacency_len()) as u64
        );
        assert_eq!(rec.counter("sim_servers"), 8);
        assert!(rep.peak_queue_depth >= 1);
        // Tracing must not change the result.
        let untraced = Simulator::new(&inst, cfg).run(&m);
        assert_eq!(rep.makespan, untraced.makespan);
        assert_eq!(rep.events, untraced.events);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn wrong_mapping_length_rejected() {
        let inst = instance(4, 10);
        Simulator::new(&inst, SimConfig::default()).run(&Mapping::identity(3));
    }
}
