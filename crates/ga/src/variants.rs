//! GA operator variants beyond the paper's §5.1 choices.
//!
//! The paper fixes roulette selection and its single-point repair
//! crossover. These variants — standard in the permutation-GA
//! literature — let the ablation harness ask whether FastMap-GA's weak
//! showing is intrinsic to GAs or an artefact of its operators:
//!
//! * [`tournament_select`] — selection with adjustable pressure
//!   (roulette over `K/Exec` is notoriously flat when costs cluster).
//! * [`order_crossover`] — OX, the classic order-preserving
//!   permutation crossover.
//! * [`inversion_mutate`] — segment reversal, the 2-opt-style mutation.

use crate::chromosome::Chromosome;
use rand::Rng;

/// Tournament selection: draw `k` competitors uniformly, return the
/// index with the lowest cost. Larger `k` = stronger selection
/// pressure.
pub fn tournament_select<R: Rng + ?Sized>(costs: &[f64], k: usize, rng: &mut R) -> usize {
    assert!(!costs.is_empty(), "empty population");
    let k = k.max(1);
    let mut best = rng.random_range(0..costs.len());
    for _ in 1..k {
        let challenger = rng.random_range(0..costs.len());
        if costs[challenger] < costs[best] {
            best = challenger;
        }
    }
    best
}

/// Order crossover (OX): copy a random slice of `parent1`, then fill
/// the remaining positions with `parent2`'s genes in `parent2`'s order.
pub fn order_crossover<R: Rng + ?Sized>(
    parent1: &Chromosome,
    parent2: &Chromosome,
    rng: &mut R,
) -> Chromosome {
    let n = parent1.len();
    assert_eq!(n, parent2.len(), "parent length mismatch");
    let mut genes = vec![usize::MAX; n];
    let mut used = Vec::new();
    order_crossover_into(parent1.genes(), parent2.genes(), &mut genes, &mut used, rng);
    Chromosome::new(genes)
}

/// The slice core of [`order_crossover`], writing into caller-owned
/// buffers (`child` is fully overwritten, `used` is scratch). Consumes
/// the same RNG draws and produces the same child as
/// [`order_crossover`].
pub fn order_crossover_into<R: Rng + ?Sized>(
    parent1: &[usize],
    parent2: &[usize],
    child: &mut [usize],
    used: &mut Vec<bool>,
    rng: &mut R,
) {
    let n = parent1.len();
    debug_assert_eq!(n, parent2.len());
    debug_assert_eq!(n, child.len());
    if n < 2 {
        child.copy_from_slice(parent1);
        return;
    }
    let a = rng.random_range(0..n);
    let b = rng.random_range(0..n);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };

    used.clear();
    used.resize(n, false);
    #[allow(clippy::needless_range_loop)] // i indexes parent and child in lockstep
    for i in lo..=hi {
        let g = parent1[i];
        child[i] = g;
        used[g] = true;
    }
    // Fill from parent2 starting after the slice, wrapping around.
    let mut pos = (hi + 1) % n;
    for off in 0..n {
        let g = parent2[(hi + 1 + off) % n];
        if !used[g] {
            child[pos] = g;
            used[g] = true;
            pos = (pos + 1) % n;
        }
    }
}

/// Inversion mutation: with probability `p`, reverse a random segment.
pub fn inversion_mutate<R: Rng + ?Sized>(c: &mut Chromosome, p: f64, rng: &mut R) {
    let n = c.len();
    if n < 2 || rng.random::<f64>() >= p {
        return;
    }
    let a = rng.random_range(0..n);
    let b = rng.random_range(0..n);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    c.genes_mut()[lo..=hi].reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_rngutil::perm::is_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tournament_prefers_low_costs() {
        let costs = [100.0, 1.0, 50.0, 80.0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins = [0usize; 4];
        for _ in 0..10_000 {
            wins[tournament_select(&costs, 3, &mut rng)] += 1;
        }
        assert!(wins[1] > wins[0]);
        assert!(wins[1] > wins[2]);
        assert!(wins[1] > wins[3]);
        // k = 3 of 4: the best wins P ≈ 1 − (3/4)³ ≈ 0.58.
        let f = wins[1] as f64 / 10_000.0;
        assert!((f - 0.578).abs() < 0.03, "best won {f}");
    }

    #[test]
    fn tournament_k1_is_uniform() {
        let costs = [5.0, 1.0, 3.0];
        let mut rng = StdRng::seed_from_u64(2);
        let mut wins = [0usize; 3];
        for _ in 0..30_000 {
            wins[tournament_select(&costs, 1, &mut rng)] += 1;
        }
        for &w in &wins {
            let f = w as f64 / 30_000.0;
            assert!((f - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn ox_yields_permutations() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2usize, 3, 5, 10, 17] {
            for _ in 0..100 {
                let a = Chromosome::random(n, &mut rng);
                let b = Chromosome::random(n, &mut rng);
                let child = order_crossover(&a, &b, &mut rng);
                assert!(is_permutation(child.genes()), "n = {n}");
            }
        }
    }

    #[test]
    fn ox_preserves_slice_of_parent1() {
        // With a fixed seed we can't control the slice, so check the
        // weaker invariant: every gene of the child that matches
        // parent1 at the same position forms a contiguous block in at
        // least one run... instead verify directly with a crafted tiny
        // case over many seeds: parent slices always survive.
        let mut rng = StdRng::seed_from_u64(4);
        let a = Chromosome::new(vec![0, 1, 2, 3, 4]);
        let b = Chromosome::new(vec![4, 3, 2, 1, 0]);
        for _ in 0..50 {
            let child = order_crossover(&a, &b, &mut rng);
            // The child must contain some position where it agrees
            // with parent1 (the copied slice is non-empty).
            assert!(
                (0..5).any(|i| child.gene(i) == a.gene(i)),
                "no trace of parent1: {:?}",
                child.genes()
            );
        }
    }

    #[test]
    fn inversion_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut c = Chromosome::random(9, &mut rng);
            inversion_mutate(&mut c, 1.0, &mut rng);
            assert!(is_permutation(c.genes()));
        }
    }

    #[test]
    fn inversion_zero_prob_is_noop() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = Chromosome::random(8, &mut rng);
        let before = c.clone();
        inversion_mutate(&mut c, 0.0, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn tiny_chromosomes_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Chromosome::new(vec![0]);
        let child = order_crossover(&a, &a.clone(), &mut rng);
        assert_eq!(child.genes(), &[0]);
        let mut c = Chromosome::new(vec![0]);
        inversion_mutate(&mut c, 1.0, &mut rng);
        assert_eq!(c.genes(), &[0]);
    }
}
