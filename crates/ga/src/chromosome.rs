//! Permutation chromosomes.
//!
//! §5.1: "We chose to represent the chromosome as a string of length
//! `|V_r|` whose values are integers denoting a TIG node and indexed by
//! the resource node." I.e. `genes[resource] = task` — the *inverse* of
//! the task→resource [`match_core::Mapping`]. Conversions between the
//! two orientations live here.

use match_core::Mapping;
use match_rngutil::perm::{invert_permutation, is_permutation, random_permutation};
use rand::Rng;

/// A permutation chromosome, `genes[resource] = task`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chromosome {
    genes: Vec<usize>,
}

impl Chromosome {
    /// Wrap a gene vector. Panics unless it is a permutation — the GA's
    /// operators preserve permutation-ness, so a violation is a bug.
    pub fn new(genes: Vec<usize>) -> Self {
        assert!(is_permutation(&genes), "chromosome must be a permutation");
        Chromosome { genes }
    }

    /// A uniformly random chromosome of length `n`.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Chromosome {
            genes: random_permutation(n, rng),
        }
    }

    /// Number of genes (`|V_r|`).
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// True for the empty chromosome.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// The gene (task) at `resource`.
    pub fn gene(&self, resource: usize) -> usize {
        self.genes[resource]
    }

    /// Raw genes, resource-indexed.
    pub fn genes(&self) -> &[usize] {
        &self.genes
    }

    /// Mutable raw genes for operators. Callers must preserve the
    /// permutation property.
    pub(crate) fn genes_mut(&mut self) -> &mut [usize] {
        &mut self.genes
    }

    /// Convert to a task→resource [`Mapping`] (inverts the permutation).
    pub fn to_mapping(&self) -> Mapping {
        Mapping::new(invert_permutation(&self.genes))
    }

    /// Build from a task→resource [`Mapping`] (must be bijective).
    pub fn from_mapping(m: &Mapping) -> Self {
        Chromosome::new(invert_permutation(m.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_chromosomes_are_permutations() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0, 1, 5, 20] {
            let c = Chromosome::random(n, &mut rng);
            assert_eq!(c.len(), n);
            assert!(is_permutation(c.genes()));
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_duplicates() {
        Chromosome::new(vec![0, 0, 1]);
    }

    #[test]
    fn mapping_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Chromosome::random(10, &mut rng);
        let m = c.to_mapping();
        assert!(m.is_permutation());
        // genes[resource] = task  <=>  mapping[task] = resource
        for r in 0..10 {
            assert_eq!(m.resource_of(c.gene(r)), r);
        }
        assert_eq!(Chromosome::from_mapping(&m), c);
    }
}
