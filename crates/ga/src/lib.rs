//! FastMap-GA — the genetic-algorithm baseline of the paper (§5.1).
//!
//! The paper compares MaTCH against the GA component of the authors'
//! earlier FastMap scheme (reference 16), re-implemented here from the §5.1
//! description:
//!
//! * **Encoding** — permutation encoding: a chromosome is a string of
//!   length `|V_r|`, indexed by resource, whose values are TIG nodes
//!   ([`chromosome`]).
//! * **Fitness** — `Ψ(M) = K / Exec(M)` (reciprocal makespan scaled by a
//!   constant `K`; roulette selection is scale-invariant, so `K` only
//!   matters for reporting).
//! * **Selection** — roulette wheel over fitness.
//! * **Crossover** — single-point with duplicate repair from the second
//!   parent's first half (Figure 6a), probability 0.85.
//! * **Mutation** — per-gene swap (Figure 6b), probability 0.07.
//! * **Elitism** — the best individual survives unconditionally.
//! * **Termination** — a fixed, configured number of generations (the
//!   paper: "based on an arbitrary, predefined number of runs").
//!
//! The paper's three configurations are provided as constructors:
//! [`GaConfig::paper_default`] (500/1000), [`GaConfig::anova_100_10000`]
//! and [`GaConfig::anova_1000_1000`].
//!
//! Two generation pipelines produce the populations
//! ([`GaConfig::sampler`], mirroring `match-core`'s `SamplerMode`):
//! `Sequential` is the historical per-individual loop with a bit-exact
//! RNG stream, `Batched` ([`batch`]) runs the same operators over flat
//! reused `population × n` buffers with parallel fan-out, alias-method
//! roulette, and O(degree) delta-cost mutation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod chromosome;
pub mod engine;
pub mod operators;
pub mod variants;

pub use chromosome::Chromosome;
pub use engine::{CrossoverOp, FastMapGa, GaConfig, GaOutcome, MutationOp, SelectionOp};
