//! The FastMap-GA engine: roulette selection, crossover, mutation,
//! elitism, fixed generation budget.

use crate::chromosome::Chromosome;
use crate::operators::{crossover, mutate};
use crate::variants::{inversion_mutate, order_crossover, tournament_select};
use match_core::{
    exec_time, record_run_end, record_run_start, EvalBackend, Mapper, MapperOutcome,
    MappingInstance, SamplerMode, StopToken,
};
use match_rngutil::roulette::RouletteWheel;
use match_telemetry::{Event, IterEvent, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Parent-selection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionOp {
    /// Fitness-proportional roulette wheel over `K/Exec` (paper §5.1).
    Roulette,
    /// Tournament of the given size (literature variant; stronger
    /// pressure when costs cluster).
    Tournament(usize),
}

/// Crossover operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverOp {
    /// Single-point with duplicate repair (paper Figure 6a).
    SinglePointRepair,
    /// Order crossover (OX).
    Order,
}

/// Mutation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Per-gene swap (paper Figure 6b).
    Swap,
    /// Whole-chromosome segment inversion.
    Inversion,
}

/// GA tunables (defaults from §5.1/§5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Population size (paper main runs: 500).
    pub population: usize,
    /// Number of generations (paper main runs: 1000).
    pub generations: usize,
    /// Crossover probability (paper: 0.85).
    pub crossover_prob: f64,
    /// Per-gene mutation probability (paper: 0.07).
    pub mutation_prob: f64,
    /// Fitness scale `K` in `Ψ = K / Exec`. Roulette selection is
    /// scale-invariant, so this only affects reported fitness values.
    pub fitness_k: f64,
    /// Keep the best individual unconditionally (paper: yes).
    pub elitism: bool,
    /// Parent selection (paper: roulette).
    pub selection: SelectionOp,
    /// Crossover operator (paper: single-point with repair).
    pub crossover_op: CrossoverOp,
    /// Mutation operator (paper: per-gene swap).
    pub mutation_op: MutationOp,
    /// Worker threads for the batched generation pipeline. The library
    /// default is 1 so that plain configs keep reproducing the
    /// historical sequential trajectories; the CLI and the daemon pass
    /// `match_par::default_threads()`.
    pub threads: usize,
    /// Generation-loop pipeline selection, mirroring
    /// [`match_core::MatchConfig`]: `Auto` resolves through the shared
    /// [`SamplerMode::resolved_for`] cutover (thread count and instance
    /// size), `Sequential` pins the historical per-individual loop
    /// (bit-exact RNG stream), `Batched` pins the flat-buffer parallel
    /// loop (a *different* stream, identical for every thread count).
    pub sampler: SamplerMode,
    /// Evaluation backend for the batched pipeline's per-chunk fitness
    /// batches, mirroring [`match_core::MatchConfig`]'s `backend`: the
    /// Scalar and Simd kernels are bit-identical, so this changes
    /// throughput only. Ignored by the sequential engine.
    pub backend: EvalBackend,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_default()
    }
}

impl GaConfig {
    /// The main-experiment configuration: population 500, 1000
    /// generations.
    pub fn paper_default() -> Self {
        GaConfig {
            population: 500,
            generations: 1000,
            crossover_prob: 0.85,
            mutation_prob: 0.07,
            fitness_k: 1.0,
            elitism: true,
            selection: SelectionOp::Roulette,
            crossover_op: CrossoverOp::SinglePointRepair,
            mutation_op: MutationOp::Swap,
            threads: 1,
            sampler: SamplerMode::Auto,
            backend: EvalBackend::Auto,
        }
    }

    /// The paper configuration on the batched pipeline: all available
    /// cores, [`SamplerMode::Batched`] pinned regardless of the count.
    pub fn batched_paper() -> Self {
        GaConfig {
            threads: match_par::default_threads(),
            sampler: SamplerMode::Batched,
            ..GaConfig::paper_default()
        }
    }

    /// ANOVA arm "FastMap-GA 100/10000": population 100, 10 000
    /// generations.
    pub fn anova_100_10000() -> Self {
        GaConfig {
            population: 100,
            generations: 10_000,
            ..GaConfig::paper_default()
        }
    }

    /// ANOVA arm "FastMap-GA 1000/1000": population 1000, 1000
    /// generations.
    pub fn anova_1000_1000() -> Self {
        GaConfig {
            population: 1000,
            generations: 1000,
            ..GaConfig::paper_default()
        }
    }

    /// Panic with a clear message on nonsensical settings. Called at the
    /// top of every solver entry point.
    pub fn validate(&self) {
        assert!(self.population >= 2, "population must be at least 2");
        assert!(self.generations >= 1, "need at least one generation");
        assert!(
            (0.0..=1.0).contains(&self.crossover_prob),
            "crossover probability out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.mutation_prob),
            "mutation probability out of [0,1]"
        );
        assert!(self.fitness_k > 0.0, "fitness scale must be positive");
        assert!(self.threads >= 1, "thread count must be at least 1");
    }
}

/// GA result with per-generation telemetry.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// The heuristic-agnostic outcome (best mapping, ET, MT, counters).
    pub outcome: MapperOutcome,
    /// Best cost after each generation (length = generations run).
    pub best_per_generation: Vec<f64>,
}

/// The FastMap-GA solver.
///
/// ```
/// use match_core::MappingInstance;
/// use match_ga::{FastMapGa, GaConfig};
/// use match_graph::gen::InstanceGenerator;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let pair = InstanceGenerator::paper_family(8).generate(&mut rng);
/// let inst = MappingInstance::from_pair(&pair);
///
/// let cfg = GaConfig { population: 40, generations: 30, ..GaConfig::paper_default() };
/// let out = FastMapGa::new(cfg).run(&inst, &mut rng);
/// assert!(out.outcome.mapping.is_permutation());
/// // Elitism makes the best-so-far curve monotone.
/// assert!(out.best_per_generation.windows(2).all(|w| w[1] <= w[0]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FastMapGa {
    config: GaConfig,
}

impl FastMapGa {
    /// Build a solver with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        FastMapGa { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Run the GA with full telemetry.
    pub fn run(&self, inst: &MappingInstance, rng: &mut StdRng) -> GaOutcome {
        self.run_traced(inst, rng, &mut NullRecorder)
    }

    /// [`FastMapGa::run`] with live telemetry: one `iter` event per
    /// generation (running best, population mean cost, wall time) plus
    /// `crossovers`/`mutations` operator counters. Tracing does not
    /// perturb the RNG stream, so traced and untraced runs produce
    /// identical mappings for the same seed.
    pub fn run_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> GaOutcome {
        self.run_controlled(inst, rng, recorder, &StopToken::never())
    }

    /// [`FastMapGa::run_traced`] with cooperative cancellation: the stop
    /// token is polled once per generation, so a fired deadline returns
    /// the best-so-far mapping after finishing the current generation.
    /// `iterations` reports the generations actually run.
    pub fn run_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> GaOutcome {
        self.config.validate();
        assert!(
            inst.is_square(),
            "FastMap-GA's permutation encoding needs |V_t| = |V_r|"
        );
        // The Auto→Batched decision (thread count, instance-size
        // cutover, size-0 degenerate case) is shared with the CE matcher
        // via `SamplerMode::resolved_for` so the two cannot diverge.
        let mode = self
            .config
            .sampler
            .resolved_for(self.config.threads, inst.n_tasks());
        if mode == SamplerMode::Batched {
            return crate::batch::run_batched(&self.config, inst, rng, recorder, stop);
        }
        self.run_sequential(inst, rng, recorder, stop)
    }

    /// The historical per-individual generation loop (`Sequential`):
    /// heap-allocated chromosomes, linear roulette wheel, one full
    /// Eq. 1/Eq. 2 evaluation per child. Its RNG stream is bit-exact
    /// with every release since the seed.
    fn run_sequential(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> GaOutcome {
        record_run_start(recorder, "FastMap-GA", inst);
        let traced = recorder.enabled();
        let start = Instant::now();
        let n = inst.n_tasks();
        let pop_size = self.config.population;

        // Initial population: random permutations (§5.1).
        let mut population: Vec<Chromosome> =
            (0..pop_size).map(|_| Chromosome::random(n, rng)).collect();
        let mut costs: Vec<f64> = population
            .iter()
            .map(|c| exec_time(inst, c.to_mapping().as_slice()))
            .collect();
        let mut evaluations = pop_size as u64;

        let mut best_idx = argmin(&costs);
        let mut best = population[best_idx].clone();
        let mut best_cost = costs[best_idx];
        let mut best_per_generation = Vec::with_capacity(self.config.generations);

        let mut next_pop: Vec<Chromosome> = Vec::with_capacity(pop_size);
        let mut generations_run = 0;
        for gen in 0..self.config.generations {
            let gen_start = traced.then(Instant::now);
            let mut crossovers = 0u64;
            let mut mutations = 0u64;
            // Fitness Ψ = K / Exec and the configured selection over it.
            let wheel = match self.config.selection {
                SelectionOp::Roulette => {
                    let fitness: Vec<f64> = costs
                        .iter()
                        .map(|&c| {
                            if c > 0.0 {
                                self.config.fitness_k / c
                            } else {
                                f64::MAX
                            }
                        })
                        .collect();
                    Some(
                        RouletteWheel::new(&fitness).expect("positive costs give positive fitness"),
                    )
                }
                SelectionOp::Tournament(_) => None,
            };
            let select = |rng: &mut StdRng| -> usize {
                match self.config.selection {
                    SelectionOp::Roulette => wheel.as_ref().expect("built above").spin(rng),
                    SelectionOp::Tournament(k) => tournament_select(&costs, k, rng),
                }
            };

            next_pop.clear();
            if self.config.elitism {
                next_pop.push(best.clone());
            }
            while next_pop.len() < pop_size {
                let p1 = &population[select(rng)];
                let mut child = if rng.random::<f64>() < self.config.crossover_prob {
                    let p2 = &population[select(rng)];
                    crossovers += 1;
                    match self.config.crossover_op {
                        CrossoverOp::SinglePointRepair => crossover(p1, p2, rng),
                        CrossoverOp::Order => order_crossover(p1, p2, rng),
                    }
                } else {
                    p1.clone()
                };
                // The operators draw per-gene, so "did this child mutate"
                // is only observable by comparison; pay the clone only
                // when someone is listening.
                let pre_mutation = traced.then(|| child.clone());
                match self.config.mutation_op {
                    MutationOp::Swap => mutate(&mut child, self.config.mutation_prob, rng),
                    MutationOp::Inversion => {
                        inversion_mutate(&mut child, self.config.mutation_prob, rng)
                    }
                }
                if pre_mutation.is_some_and(|before| before != child) {
                    mutations += 1;
                }
                next_pop.push(child);
            }
            std::mem::swap(&mut population, &mut next_pop);

            costs.clear();
            costs.extend(
                population
                    .iter()
                    .map(|c| exec_time(inst, c.to_mapping().as_slice())),
            );
            evaluations += pop_size as u64;

            best_idx = argmin(&costs);
            if costs[best_idx] < best_cost {
                best_cost = costs[best_idx];
                best = population[best_idx].clone();
            }
            best_per_generation.push(best_cost);

            if let Some(gen_start) = gen_start {
                recorder.record(Event::Counter {
                    name: "crossovers".into(),
                    value: crossovers,
                });
                recorder.record(Event::Counter {
                    name: "mutations".into(),
                    value: mutations,
                });
                recorder.record(Event::Iter(IterEvent {
                    iter: gen as u64,
                    best: best_cost,
                    mean: costs.iter().sum::<f64>() / pop_size as f64,
                    gamma: None,
                    elite_size: u64::from(self.config.elitism),
                    wall_ns: gen_start.elapsed().as_nanos() as u64,
                }));
            }
            generations_run = gen + 1;
            // Cooperative cancellation: at least one generation always
            // completes, so a cancelled run still returns a valid
            // permutation and its true cost.
            if stop.should_stop() {
                break;
            }
        }

        let result = GaOutcome {
            outcome: MapperOutcome {
                mapping: best.to_mapping(),
                cost: best_cost,
                evaluations,
                iterations: generations_run,
                elapsed: start.elapsed(),
            },
            best_per_generation,
        };
        record_run_end(recorder, &result.outcome);
        result
    }
}

pub(crate) fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

impl Mapper for FastMapGa {
    fn name(&self) -> &str {
        "FastMap-GA"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.run(inst, rng).outcome
    }

    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.run_traced(inst, rng, recorder).outcome
    }

    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.run_controlled(inst, rng, recorder, stop).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::perm::random_permutation;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    fn small_config() -> GaConfig {
        GaConfig {
            population: 60,
            generations: 60,
            ..GaConfig::paper_default()
        }
    }

    #[test]
    fn produces_valid_mapping() {
        let inst = instance(10, 1);
        let out = FastMapGa::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.outcome.mapping.validate(&inst).is_ok());
        assert_eq!(
            out.outcome.cost,
            exec_time(&inst, out.outcome.mapping.as_slice())
        );
        assert_eq!(out.best_per_generation.len(), 60);
        assert_eq!(out.outcome.evaluations, 61 * 60);
    }

    #[test]
    fn tripped_stop_token_cancels_after_one_generation() {
        use match_core::StopFlag;
        let inst = instance(10, 1);
        let flag = StopFlag::new();
        flag.trip();
        let out = FastMapGa::new(small_config()).run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.outcome.iterations, 1, "stops after first generation");
        assert_eq!(out.best_per_generation.len(), 1);
        assert!(out.outcome.mapping.validate(&inst).is_ok());
        assert_eq!(
            out.outcome.cost,
            exec_time(&inst, out.outcome.mapping.as_slice())
        );
    }

    #[test]
    fn never_token_matches_plain_run() {
        let inst = instance(10, 1);
        let plain = FastMapGa::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(2));
        let controlled = FastMapGa::new(small_config()).run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::never(),
        );
        assert_eq!(plain.outcome.mapping, controlled.outcome.mapping);
        assert_eq!(plain.outcome.cost, controlled.outcome.cost);
        assert_eq!(plain.outcome.iterations, controlled.outcome.iterations);
    }

    #[test]
    fn best_curve_is_monotone_with_elitism() {
        let inst = instance(12, 3);
        let out = FastMapGa::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(4));
        for w in out.best_per_generation.windows(2) {
            assert!(w[1] <= w[0], "elitism must make the best monotone");
        }
    }

    #[test]
    fn improves_over_initial_random_population() {
        let inst = instance(12, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut random_best = f64::INFINITY;
        for _ in 0..60 {
            random_best = random_best.min(exec_time(&inst, &random_permutation(12, &mut rng)));
        }
        let out = FastMapGa::new(small_config()).run(&inst, &mut rng);
        assert!(
            out.outcome.cost <= random_best,
            "GA {} vs best initial {}",
            out.outcome.cost,
            random_best
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(8, 7);
        let ga = FastMapGa::new(small_config());
        let a = ga.run(&inst, &mut StdRng::seed_from_u64(8));
        let b = ga.run(&inst, &mut StdRng::seed_from_u64(8));
        assert_eq!(a.outcome.mapping, b.outcome.mapping);
        assert_eq!(a.best_per_generation, b.best_per_generation);
    }

    #[test]
    fn anova_configs_match_paper() {
        let a = GaConfig::anova_100_10000();
        assert_eq!((a.population, a.generations), (100, 10_000));
        let b = GaConfig::anova_1000_1000();
        assert_eq!((b.population, b.generations), (1000, 1000));
        let d = GaConfig::paper_default();
        assert_eq!((d.population, d.generations), (500, 1000));
        assert_eq!(d.crossover_prob, 0.85);
        assert_eq!(d.mutation_prob, 0.07);
    }

    #[test]
    fn mapper_trait_delegates() {
        let inst = instance(8, 9);
        let ga = FastMapGa::new(small_config());
        assert_eq!(ga.name(), "FastMap-GA");
        let out = ga.map(&inst, &mut StdRng::seed_from_u64(10));
        assert!(out.mapping.is_permutation());
        assert_eq!(out.iterations, 60);
    }

    #[test]
    fn no_elitism_still_tracks_best_ever() {
        let inst = instance(10, 11);
        let cfg = GaConfig {
            elitism: false,
            ..small_config()
        };
        let out = FastMapGa::new(cfg).run(&inst, &mut StdRng::seed_from_u64(12));
        // best_per_generation is a running best, so still monotone.
        for w in out.best_per_generation.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(out.outcome.mapping.is_permutation());
    }

    #[test]
    fn variant_operators_produce_valid_mappings() {
        let inst = instance(10, 21);
        for selection in [SelectionOp::Roulette, SelectionOp::Tournament(3)] {
            for crossover_op in [CrossoverOp::SinglePointRepair, CrossoverOp::Order] {
                for mutation_op in [MutationOp::Swap, MutationOp::Inversion] {
                    let cfg = GaConfig {
                        population: 30,
                        generations: 20,
                        selection,
                        crossover_op,
                        mutation_op,
                        ..GaConfig::paper_default()
                    };
                    let out = FastMapGa::new(cfg).run(&inst, &mut StdRng::seed_from_u64(22));
                    assert!(
                        out.outcome.mapping.is_permutation(),
                        "{selection:?}/{crossover_op:?}/{mutation_op:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tournament_selection_converges_faster_on_clustered_costs() {
        // Roulette over K/Exec has almost no pressure when costs are
        // within a few percent of each other; tournament keeps working.
        let inst = instance(14, 23);
        let base = GaConfig {
            population: 80,
            generations: 120,
            ..GaConfig::paper_default()
        };
        let roulette = FastMapGa::new(base.clone()).run(&inst, &mut StdRng::seed_from_u64(24));
        let tournament = FastMapGa::new(GaConfig {
            selection: SelectionOp::Tournament(4),
            ..base
        })
        .run(&inst, &mut StdRng::seed_from_u64(24));
        assert!(
            tournament.outcome.cost <= roulette.outcome.cost * 1.02,
            "tournament {} vs roulette {}",
            tournament.outcome.cost,
            roulette.outcome.cost
        );
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_tiny_population() {
        let inst = instance(5, 13);
        let cfg = GaConfig {
            population: 1,
            ..GaConfig::paper_default()
        };
        FastMapGa::new(cfg).run(&inst, &mut StdRng::seed_from_u64(14));
    }

    #[test]
    #[should_panic(expected = "permutation encoding")]
    fn rejects_rectangular_instance() {
        use match_graph::gen::paper::PaperFamilyConfig;
        use match_graph::InstancePair;
        let mut rng = StdRng::seed_from_u64(15);
        let tig = PaperFamilyConfig::new(6).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        FastMapGa::new(small_config()).run(&inst, &mut rng);
    }
}
