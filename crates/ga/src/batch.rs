//! The batched FastMap-GA generation pipeline.
//!
//! The sequential engine ([`crate::engine`]) materialises every child as
//! a fresh heap [`Chromosome`], spins an O(population) roulette wheel
//! per parent draw, and pays a full Eq. 1/Eq. 2 evaluation per child.
//! This module is the `FlatSampler`-style rebuild of that loop:
//!
//! * **Flat ping-pong buffers** — parent and offspring generations live
//!   in two reused `population × n` gene buffers; a generation
//!   allocates nothing.
//! * **Parallel fan-out** — children are produced and scored inside
//!   `match_par::parallel_fill_rows` workers. Every child `i` of
//!   generation `g` draws from its own counter-based
//!   [`SplitMix64`] stream derived from `(gen_seed, i)`, where
//!   `gen_seed` is one driver-RNG draw per generation — results are
//!   bit-identical for every thread count and chunking.
//! * **Alias roulette** — fitness-proportional selection goes through a
//!   [`AliasTable`] rebuilt in place once per generation: O(1) per
//!   parent draw instead of a linear (or binary-search) wheel.
//! * **Delta-cost mutation** — a child is fully evaluated once, right
//!   after crossover ([`exec_per_resource_into`] into the row's reused
//!   load buffer); every mutation swap then updates the per-resource
//!   loads via [`apply_swap_delta`] in O(degree) instead of calling
//!   `exec_time` from scratch. The full evaluation stays in as a
//!   `debug_assert` oracle, and the `full_evaluations` /
//!   `delta_swaps` trace counters make the claim auditable.
//!
//! The stream differs from the sequential engine's: pin
//! `SamplerMode::Sequential` to reproduce historical trajectories.

use crate::chromosome::Chromosome;
use crate::engine::{argmin, CrossoverOp, GaConfig, GaOutcome, MutationOp, SelectionOp};
use crate::operators::crossover_into;
use crate::variants::{order_crossover_into, tournament_select};
use match_core::{
    apply_swap_delta, build_plan, exec_per_resource_into, exec_time, record_run_end,
    record_run_start, MapperOutcome, MappingInstance, StopToken,
};
use match_eval::EvalScratch;
use match_rngutil::{AliasTable, SplitMix64};
use match_telemetry::{Event, IterEvent, PoolEvent, Recorder, SpanEvent};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-row worker state, allocated once and reused every generation:
/// the row's task→resource assignment (the inverse of its gene string),
/// its Eq. 1 per-resource loads, its Eq. 2 cost, and crossover scratch.
struct RowState {
    assign: Vec<usize>,
    loads: Vec<f64>,
    used: Vec<bool>,
    cost: f64,
}

impl RowState {
    fn new() -> Self {
        RowState {
            assign: Vec::new(),
            loads: Vec::new(),
            used: Vec::new(),
            cost: 0.0,
        }
    }

    /// Full evaluation of `genes` (genes\[resource\] = task): rebuild
    /// the inverse assignment and the Eq. 1 loads, take the Eq. 2 max.
    fn eval_full(&mut self, inst: &MappingInstance, genes: &[usize]) {
        // Every slot is overwritten below (genes is a permutation), so
        // growing without zeroing is enough.
        self.assign.resize(genes.len(), 0);
        for (r, &t) in genes.iter().enumerate() {
            self.assign[t] = r;
        }
        exec_per_resource_into(inst, &self.assign, &mut self.loads);
        self.cost = self.loads.iter().copied().fold(0.0, f64::max);
    }
}

/// Split a flat `rows × n` buffer into row `i`.
#[inline]
fn row_of(data: &[usize], n: usize, i: usize) -> &[usize] {
    &data[i * n..(i + 1) * n]
}

/// Per-worker buffers for the chunk-fused generation pipeline: the
/// chunk's children are crossed over first (stashing each child's RNG),
/// scored in **one** `match-eval` batch over the contiguous assignment
/// rows, then mutated with the stashed RNGs resumed — so the batch
/// kernel sees the widest batches the chunking allows without changing
/// any child's RNG stream.
struct ChunkScratch {
    eval: EvalScratch,
    assign: Vec<usize>,
    costs: Vec<f64>,
    loads: Vec<f64>,
    srngs: Vec<SplitMix64>,
}

/// The batched generation loop; entered through
/// [`crate::FastMapGa::run_controlled`] when the configured
/// `SamplerMode` resolves to `Batched`. Same operators, selection
/// pressure and elitism as the sequential engine — different (but
/// thread-count-invariant) RNG stream.
pub(crate) fn run_batched(
    config: &GaConfig,
    inst: &MappingInstance,
    rng: &mut StdRng,
    recorder: &mut dyn Recorder,
    stop: &StopToken,
) -> GaOutcome {
    record_run_start(recorder, "FastMap-GA", inst);
    let traced = recorder.enabled();
    let start = Instant::now();
    let n = inst.n_tasks();
    let pop = config.population;
    let elitism = usize::from(config.elitism);
    let threads = config.threads;
    // SoA evaluation plan, built once per run; both backends reproduce
    // `exec_per_resource` bit for bit, so the delta-cost mutation below
    // composes with batch-kernel loads exactly as with scalar ones.
    let plan = build_plan(inst);
    let backend = config.backend;

    let mut genes_cur = vec![0usize; pop * n];
    let mut genes_next = vec![0usize; pop * n];
    let mut states: Vec<RowState> = (0..pop).map(|_| RowState::new()).collect();
    let mut costs = vec![0.0f64; pop];
    let mut fitness: Vec<f64> = Vec::with_capacity(pop);
    let mut alias = AliasTable::empty();

    // Initial population: random permutations (§5.1), one stream per
    // row so the fill is thread-count invariant like every generation.
    let init_seed: u64 = rng.random();
    match_par::parallel_fill_rows(
        &mut genes_cur,
        &mut states,
        n,
        threads,
        || (),
        |(), i, row, st: &mut RowState| {
            let mut srng = SplitMix64::stream(init_seed, i as u64);
            for (k, g) in row.iter_mut().enumerate() {
                *g = k;
            }
            match_rngutil::shuffle(row, &mut srng);
            st.eval_full(inst, row);
        },
    );
    for (c, st) in costs.iter_mut().zip(&states) {
        *c = st.cost;
    }
    let mut evaluations = pop as u64;
    if traced {
        recorder.record(Event::Counter {
            name: "full_evaluations".into(),
            value: pop as u64,
        });
    }

    let mut best_idx = argmin(&costs);
    let mut best_genes = row_of(&genes_cur, n, best_idx).to_vec();
    let mut best_cost = costs[best_idx];
    let mut best_per_generation = Vec::with_capacity(config.generations);

    let mut generations_run = 0;
    for gen in 0..config.generations {
        let gen_start = traced.then(Instant::now);

        // Selection preprocessing: fitness Ψ = K / Exec, alias table
        // rebuilt in place (roulette only; tournament reads costs
        // directly). One O(pop) build amortised over O(1) draws.
        let select_start = traced.then(Instant::now);
        if config.selection == SelectionOp::Roulette {
            fitness.clear();
            fitness.extend(costs.iter().map(|&c| {
                if c > 0.0 {
                    config.fitness_k / c
                } else {
                    f64::MAX
                }
            }));
            let ok = alias.rebuild(&fitness);
            assert!(ok, "positive costs give positive fitness");
        }
        let select_ns = select_start.map_or(0, |t| t.elapsed().as_nanos() as u64);

        // One driver-RNG draw per generation; child i below is a pure
        // function of (parents, gen_seed, i), independent of threads.
        let gen_seed: u64 = rng.random();

        let crossovers = AtomicU64::new(0);
        let mutations = AtomicU64::new(0);
        let delta_swaps = AtomicU64::new(0);
        let vary_ns = AtomicU64::new(0);
        let eval_ns = AtomicU64::new(0);

        let region_start = traced.then(Instant::now);
        let parents = &genes_cur;
        let parent_costs = &costs;
        let alias_ref = &alias;
        let best_ref = &best_genes;
        let select = |srng: &mut SplitMix64| -> usize {
            match config.selection {
                SelectionOp::Roulette => alias_ref.sample(srng),
                SelectionOp::Tournament(k) => tournament_select(parent_costs, k, srng),
            }
        };
        let plan_ref = &plan;
        let timings = match_par::parallel_fill_rows_chunked(
            &mut genes_next,
            &mut states,
            n,
            threads,
            || ChunkScratch {
                eval: plan_ref.new_scratch(),
                assign: Vec::new(),
                costs: Vec::new(),
                loads: Vec::new(),
                srngs: Vec::new(),
            },
            |cs: &mut ChunkScratch, base, chunk_genes, chunk_states: &mut [RowState]| {
                let rows = chunk_states.len();
                // Elite rows sit at the front of the population, so
                // within a chunk they form a prefix; they survive
                // unconditionally, consume no RNG and no evaluation.
                let skip = elitism.saturating_sub(base).min(rows);
                let children = rows - skip;
                let t0 = traced.then(Instant::now);

                // Phase A — selection + crossover for every child in
                // the chunk, straight into its row; the child's inverse
                // assignment lands contiguously in the chunk buffer and
                // its RNG is stashed so mutation resumes the exact
                // stream after the batch evaluation.
                cs.srngs.clear();
                cs.assign.resize(children * n, 0);
                for (k, st) in chunk_states.iter_mut().enumerate() {
                    let row = &mut chunk_genes[k * n..(k + 1) * n];
                    if k < skip {
                        row.copy_from_slice(best_ref);
                        st.cost = best_cost;
                        continue;
                    }
                    let mut srng = SplitMix64::stream(gen_seed, (base + k) as u64);
                    let p1 = select(&mut srng);
                    if srng.random::<f64>() < config.crossover_prob {
                        let p2 = select(&mut srng);
                        match config.crossover_op {
                            CrossoverOp::SinglePointRepair => crossover_into(
                                row_of(parents, n, p1),
                                row_of(parents, n, p2),
                                row,
                                &mut st.used,
                            ),
                            CrossoverOp::Order => order_crossover_into(
                                row_of(parents, n, p1),
                                row_of(parents, n, p2),
                                row,
                                &mut st.used,
                                &mut srng,
                            ),
                        }
                        crossovers.fetch_add(1, Ordering::Relaxed);
                    } else {
                        row.copy_from_slice(row_of(parents, n, p1));
                    }
                    let assign = &mut cs.assign[(k - skip) * n..(k - skip + 1) * n];
                    for (r, &t) in row.iter().enumerate() {
                        assign[t] = r;
                    }
                    st.assign.clear();
                    st.assign.extend_from_slice(assign);
                    cs.srngs.push(srng);
                }

                // Phase B — the one full Eq. 1/Eq. 2 evaluation each
                // child pays, batched across the whole chunk through
                // the SoA kernel (loads are kept: mutation needs them).
                let t1 = traced.then(Instant::now);
                cs.costs.resize(children, 0.0);
                cs.loads.resize(children * plan_ref.n_resources(), 0.0);
                plan_ref.eval_batch(
                    backend,
                    &cs.assign,
                    &mut cs.costs,
                    Some(&mut cs.loads),
                    &mut cs.eval,
                );
                let t2 = traced.then(Instant::now);

                // Phase C — mutation with the stashed RNGs resumed:
                // every gene swap is mirrored into the row's assignment
                // and per-resource loads in O(degree), no `exec_time`
                // from scratch.
                let n_r = plan_ref.n_resources();
                for (k, st) in chunk_states.iter_mut().enumerate().skip(skip) {
                    let row = &mut chunk_genes[k * n..(k + 1) * n];
                    let c = k - skip;
                    st.cost = cs.costs[c];
                    st.loads.clear();
                    st.loads
                        .extend_from_slice(&cs.loads[c * n_r..(c + 1) * n_r]);
                    let mut srng = cs.srngs[c].clone();
                    let mut swaps = 0u64;
                    match config.mutation_op {
                        MutationOp::Swap => {
                            if n >= 2 {
                                for g in 0..n {
                                    if srng.random::<f64>() < config.mutation_prob {
                                        let j = srng.random_range(0..n);
                                        if g != j {
                                            let (ta, tb) = (row[g], row[j]);
                                            row.swap(g, j);
                                            apply_swap_delta(
                                                inst,
                                                &mut st.assign,
                                                &mut st.loads,
                                                ta,
                                                tb,
                                            );
                                            swaps += 1;
                                        }
                                    }
                                }
                            }
                        }
                        MutationOp::Inversion => {
                            if n >= 2 && srng.random::<f64>() < config.mutation_prob {
                                let a = srng.random_range(0..n);
                                let b = srng.random_range(0..n);
                                let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
                                // A reversal is a sequence of outside-in
                                // pairwise swaps, each a delta update.
                                while lo < hi {
                                    let (ta, tb) = (row[lo], row[hi]);
                                    row.swap(lo, hi);
                                    apply_swap_delta(inst, &mut st.assign, &mut st.loads, ta, tb);
                                    swaps += 1;
                                    lo += 1;
                                    hi -= 1;
                                }
                            }
                        }
                    }
                    if swaps > 0 {
                        st.cost = st.loads.iter().copied().fold(0.0, f64::max);
                        delta_swaps.fetch_add(swaps, Ordering::Relaxed);
                        mutations.fetch_add(1, Ordering::Relaxed);
                    }
                    debug_assert!(
                        {
                            let fresh = exec_time(inst, &st.assign);
                            (st.cost - fresh).abs() <= 1e-9 * (1.0 + fresh.abs())
                        },
                        "delta-cost loads drifted from the Eq. 1 oracle"
                    );
                }

                if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                    let t3 = Instant::now();
                    vary_ns.fetch_add(((t1 - t0) + (t3 - t2)).as_nanos() as u64, Ordering::Relaxed);
                    eval_ns.fetch_add((t2 - t1).as_nanos() as u64, Ordering::Relaxed);
                }
            },
        );
        let children = (pop - elitism) as u64;
        evaluations += children;

        for (c, st) in costs.iter_mut().zip(&states) {
            *c = st.cost;
        }
        std::mem::swap(&mut genes_cur, &mut genes_next);

        best_idx = argmin(&costs);
        if costs[best_idx] < best_cost {
            best_cost = costs[best_idx];
            best_genes.clear();
            best_genes.extend_from_slice(row_of(&genes_cur, n, best_idx));
        }
        best_per_generation.push(best_cost);

        if let (Some(gen_start), Some(region_start)) = (gen_start, region_start) {
            // Split the fused region's wall clock between variation
            // (selection, crossover, mutation deltas) and evaluation in
            // proportion to worker-accumulated time, mirroring the CE
            // driver, so `matchctl report` phase budgets stay honest.
            let wall = region_start.elapsed().as_nanos() as u64;
            let v = vary_ns.load(Ordering::Relaxed);
            let e = eval_ns.load(Ordering::Relaxed);
            let vary_share = if v + e == 0 {
                0
            } else {
                (wall as u128 * v as u128 / (v + e) as u128) as u64
            };
            recorder.record(Event::Span(SpanEvent {
                name: "select".into(),
                iter: gen as u64,
                wall_ns: select_ns,
            }));
            recorder.record(Event::Span(SpanEvent {
                name: "vary".into(),
                iter: gen as u64,
                wall_ns: vary_share,
            }));
            recorder.record(Event::Span(SpanEvent {
                name: "evaluate".into(),
                iter: gen as u64,
                wall_ns: wall - vary_share,
            }));
            for t in &timings {
                recorder.record(Event::Pool(PoolEvent {
                    iter: gen as u64,
                    chunk: t.chunk,
                    len: t.len,
                    wall_ns: t.wall_ns,
                }));
            }
            recorder.record(Event::Counter {
                name: "crossovers".into(),
                value: crossovers.load(Ordering::Relaxed),
            });
            recorder.record(Event::Counter {
                name: "mutations".into(),
                value: mutations.load(Ordering::Relaxed),
            });
            recorder.record(Event::Counter {
                name: "full_evaluations".into(),
                value: children,
            });
            recorder.record(Event::Counter {
                name: "delta_swaps".into(),
                value: delta_swaps.load(Ordering::Relaxed),
            });
            recorder.record(Event::Iter(IterEvent {
                iter: gen as u64,
                best: best_cost,
                mean: costs.iter().sum::<f64>() / pop as f64,
                gamma: None,
                elite_size: elitism as u64,
                wall_ns: gen_start.elapsed().as_nanos() as u64,
            }));
        }
        generations_run = gen + 1;
        // Cooperative cancellation: at least one generation always
        // completes, so a cancelled run still returns a valid
        // permutation and its true cost.
        if stop.should_stop() {
            break;
        }
    }

    let result = GaOutcome {
        outcome: MapperOutcome {
            mapping: Chromosome::new(best_genes).to_mapping(),
            cost: best_cost,
            evaluations,
            iterations: generations_run,
            elapsed: start.elapsed(),
        },
        best_per_generation,
    };
    record_run_end(recorder, &result.outcome);
    result
}

#[cfg(test)]
mod tests {
    use crate::engine::{FastMapGa, GaConfig};
    use match_core::{exec_time, MappingInstance, SamplerMode, StopToken};
    use match_graph::gen::InstanceGenerator;
    use match_telemetry::{MemoryRecorder, NullRecorder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    fn batched_config(threads: usize) -> GaConfig {
        GaConfig {
            population: 60,
            generations: 60,
            threads,
            sampler: SamplerMode::Batched,
            ..GaConfig::paper_default()
        }
    }

    #[test]
    fn batched_produces_valid_mapping() {
        let inst = instance(10, 1);
        let out = FastMapGa::new(batched_config(2)).run(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.outcome.mapping.validate(&inst).is_ok());
        assert_eq!(
            out.outcome.cost,
            exec_time(&inst, out.outcome.mapping.as_slice())
        );
        assert_eq!(out.best_per_generation.len(), 60);
        // pop initial evaluations + (pop - 1 elite) per generation.
        assert_eq!(out.outcome.evaluations, 60 + 60 * 59);
    }

    #[test]
    fn batched_bit_identical_across_thread_counts() {
        let inst = instance(12, 3);
        let runs: Vec<_> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                FastMapGa::new(batched_config(threads)).run(&inst, &mut StdRng::seed_from_u64(4))
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].outcome.mapping, other.outcome.mapping);
            assert_eq!(runs[0].outcome.cost, other.outcome.cost);
            assert_eq!(runs[0].best_per_generation, other.best_per_generation);
            assert_eq!(runs[0].outcome.evaluations, other.outcome.evaluations);
        }
    }

    #[test]
    fn eval_backends_produce_identical_batched_runs() {
        use match_core::EvalBackend;
        let inst = instance(12, 3);
        let run = |backend: EvalBackend, threads: usize| {
            FastMapGa::new(GaConfig {
                backend,
                ..batched_config(threads)
            })
            .run(&inst, &mut StdRng::seed_from_u64(4))
        };
        let base = run(EvalBackend::Scalar, 1);
        for backend in [EvalBackend::Simd, EvalBackend::Auto] {
            for threads in [1, 2, 8] {
                let other = run(backend, threads);
                assert_eq!(
                    base.outcome.mapping, other.outcome.mapping,
                    "{backend:?} threads={threads}"
                );
                assert_eq!(
                    base.outcome.cost.to_bits(),
                    other.outcome.cost.to_bits(),
                    "{backend:?} threads={threads}"
                );
                assert_eq!(
                    base.best_per_generation, other.best_per_generation,
                    "{backend:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn auto_sampler_resolves_via_shared_cutover() {
        // Auto resolution is `SamplerMode::resolved_for`, shared with
        // the CE matcher: batched only when threads > 1 AND the instance
        // reaches the pinned cutover size.
        let small = instance(8, 5);
        let cfg = |threads, sampler| GaConfig {
            population: 40,
            generations: 30,
            threads,
            sampler,
            ..GaConfig::paper_default()
        };
        // threads = 1: Auto must reproduce the sequential trajectory.
        let auto1 =
            FastMapGa::new(cfg(1, SamplerMode::Auto)).run(&small, &mut StdRng::seed_from_u64(6));
        let seq1 = FastMapGa::new(cfg(1, SamplerMode::Sequential))
            .run(&small, &mut StdRng::seed_from_u64(6));
        assert_eq!(auto1.outcome.mapping, seq1.outcome.mapping);
        assert_eq!(auto1.best_per_generation, seq1.best_per_generation);
        // threads > 1 but below the size cutover: still sequential —
        // the batched pipeline's per-sample RNG setup doesn't pay off.
        let auto4 =
            FastMapGa::new(cfg(4, SamplerMode::Auto)).run(&small, &mut StdRng::seed_from_u64(6));
        let seq4 = FastMapGa::new(cfg(4, SamplerMode::Sequential))
            .run(&small, &mut StdRng::seed_from_u64(6));
        assert_eq!(auto4.outcome.mapping, seq4.outcome.mapping);
        assert_eq!(auto4.best_per_generation, seq4.best_per_generation);
        // threads > 1 at the cutover size: Auto takes the batched path.
        let big = instance(SamplerMode::AUTO_BATCH_MIN_TASKS, 5);
        let auto_big =
            FastMapGa::new(cfg(4, SamplerMode::Auto)).run(&big, &mut StdRng::seed_from_u64(6));
        let batched_big =
            FastMapGa::new(cfg(4, SamplerMode::Batched)).run(&big, &mut StdRng::seed_from_u64(6));
        assert_eq!(auto_big.outcome.mapping, batched_big.outcome.mapping);
        assert_eq!(
            auto_big.best_per_generation,
            batched_big.best_per_generation
        );
    }

    #[test]
    fn mutation_pays_no_full_evaluations() {
        // The trace accounts for every full Eq. 1 evaluation: pop at
        // init plus (pop - elite) per generation. Thousands of mutation
        // swaps happen on top (delta_swaps), so if mutation re-evaluated
        // from scratch the full_evaluations counter could not balance.
        let inst = instance(10, 7);
        let mut rec = MemoryRecorder::new();
        let out = FastMapGa::new(batched_config(2)).run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(8),
            &mut rec,
            &StopToken::never(),
        );
        assert_eq!(rec.counter("full_evaluations"), out.outcome.evaluations);
        assert_eq!(rec.counter("full_evaluations"), 60 + 60 * 59);
        assert!(
            rec.counter("delta_swaps") > 0,
            "swap mutation must go through the delta path"
        );
        assert!(rec.counter("crossovers") > 0);
    }

    #[test]
    fn batched_stop_token_cancels_after_one_generation() {
        use match_core::StopFlag;
        let inst = instance(10, 9);
        let flag = StopFlag::new();
        flag.trip();
        let out = FastMapGa::new(batched_config(2)).run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(10),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.outcome.iterations, 1);
        assert_eq!(out.best_per_generation.len(), 1);
        assert!(out.outcome.mapping.validate(&inst).is_ok());
    }

    #[test]
    fn batched_quality_comparable_to_sequential() {
        let inst = instance(12, 11);
        let seq = FastMapGa::new(GaConfig {
            population: 60,
            generations: 60,
            ..GaConfig::paper_default()
        })
        .run(&inst, &mut StdRng::seed_from_u64(12));
        let bat = FastMapGa::new(batched_config(2)).run(&inst, &mut StdRng::seed_from_u64(12));
        // Different RNG streams, same operators and selection pressure:
        // allow a modest gap either way.
        assert!(
            bat.outcome.cost <= 1.25 * seq.outcome.cost,
            "batched {} vs sequential {}",
            bat.outcome.cost,
            seq.outcome.cost
        );
        for w in bat.best_per_generation.windows(2) {
            assert!(w[1] <= w[0], "elitism keeps the batched best monotone");
        }
    }

    #[test]
    fn batched_no_elitism_still_tracks_best_ever() {
        let inst = instance(10, 13);
        let cfg = GaConfig {
            elitism: false,
            ..batched_config(2)
        };
        let out = FastMapGa::new(cfg).run(&inst, &mut StdRng::seed_from_u64(14));
        for w in out.best_per_generation.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(out.outcome.mapping.is_permutation());
        // No elite rows: every child of every generation is evaluated.
        assert_eq!(out.outcome.evaluations, 60 + 60 * 60);
    }

    #[test]
    fn batched_variant_operators_produce_valid_mappings() {
        use crate::engine::{CrossoverOp, MutationOp, SelectionOp};
        let inst = instance(10, 15);
        for selection in [SelectionOp::Roulette, SelectionOp::Tournament(3)] {
            for crossover_op in [CrossoverOp::SinglePointRepair, CrossoverOp::Order] {
                for mutation_op in [MutationOp::Swap, MutationOp::Inversion] {
                    let cfg = GaConfig {
                        population: 30,
                        generations: 20,
                        selection,
                        crossover_op,
                        mutation_op,
                        ..batched_config(2)
                    };
                    let out = FastMapGa::new(cfg).run(&inst, &mut StdRng::seed_from_u64(16));
                    assert!(
                        out.outcome.mapping.is_permutation(),
                        "{selection:?}/{crossover_op:?}/{mutation_op:?}"
                    );
                    assert_eq!(
                        out.outcome.cost,
                        exec_time(&inst, out.outcome.mapping.as_slice())
                    );
                }
            }
        }
    }
}
