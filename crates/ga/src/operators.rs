//! GA variation operators (paper Figure 6).

use crate::chromosome::Chromosome;
use rand::Rng;

/// Single-point crossover with duplicate repair (Figure 6a).
///
/// 1. Copy the first half of `parent1` onto the child.
/// 2. For each second-half position, take `parent2`'s gene at that
///    position; "if any of the genes of the second half of the second
///    parent causes a duplicate mapping, choose (in order) a gene from
///    the first half of the second parent that does not cause a
///    duplicate". A final fallback over all of `parent2` covers the
///    odd-length corner case where the first half alone cannot supply a
///    fresh gene.
pub fn crossover<R: Rng + ?Sized>(
    parent1: &Chromosome,
    parent2: &Chromosome,
    rng: &mut R,
) -> Chromosome {
    let n = parent1.len();
    assert_eq!(n, parent2.len(), "parent length mismatch");
    let _ = rng; // the paper's operator is deterministic given the parents
    if n == 0 {
        return parent1.clone();
    }
    let mut genes = vec![0usize; n];
    let mut used = Vec::new();
    crossover_into(parent1.genes(), parent2.genes(), &mut genes, &mut used);
    Chromosome::new(genes)
}

/// The slice core of [`crossover`]: write the repaired single-point
/// child of `parent1 × parent2` into `child` (all three of length
/// `n > 0`). `used` is caller-owned scratch, cleared and resized here,
/// so the batched engine's per-worker buffers make a crossover
/// allocation-free. Same child as [`crossover`] for the same parents.
pub fn crossover_into(
    parent1: &[usize],
    parent2: &[usize],
    child: &mut [usize],
    used: &mut Vec<bool>,
) {
    let n = parent1.len();
    debug_assert_eq!(n, parent2.len());
    debug_assert_eq!(n, child.len());
    used.clear();
    used.resize(n, false);
    let half = n / 2;
    for r in 0..half {
        let g = parent1[r];
        child[r] = g;
        used[g] = true;
    }
    for r in half..n {
        let candidate = parent2[r];
        let gene = if !used[candidate] {
            candidate
        } else {
            // In-order scan of parent2's first half…
            parent2[..half]
                .iter()
                .copied()
                .find(|&g| !used[g])
                // …falling back to any unused gene of parent2 (odd n).
                .unwrap_or_else(|| {
                    parent2
                        .iter()
                        .copied()
                        .find(|&g| !used[g])
                        .expect("some gene is unused")
                })
        };
        child[r] = gene;
        used[gene] = true;
    }
}

/// Per-gene swap mutation (Figure 6b): each gene independently mutates
/// with probability `p`, exchanging its value with a uniformly chosen
/// other position — the standard permutation-preserving reading of a
/// "mutation operator applied on each gene based on the mutation
/// probability".
pub fn mutate<R: Rng + ?Sized>(c: &mut Chromosome, p: f64, rng: &mut R) {
    let n = c.len();
    if n < 2 {
        return;
    }
    for i in 0..n {
        if rng.random::<f64>() < p {
            let j = rng.random_range(0..n);
            c.genes_mut().swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_rngutil::perm::is_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crossover_yields_permutations() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1, 2, 3, 7, 8, 15, 20] {
            for _ in 0..50 {
                let a = Chromosome::random(n, &mut rng);
                let b = Chromosome::random(n, &mut rng);
                let child = crossover(&a, &b, &mut rng);
                assert_eq!(child.len(), n);
                assert!(is_permutation(child.genes()), "n={n}");
            }
        }
    }

    #[test]
    fn crossover_copies_first_half_of_parent1() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Chromosome::new(vec![3, 1, 4, 0, 2, 5]);
        let b = Chromosome::new(vec![5, 4, 3, 2, 1, 0]);
        let child = crossover(&a, &b, &mut rng);
        assert_eq!(&child.genes()[..3], &[3, 1, 4]);
    }

    #[test]
    fn crossover_prefers_parent2_second_half_genes() {
        let mut rng = StdRng::seed_from_u64(13);
        // a = [0,1,2,3]; b = [1,0,3,2]. Child first half [0,1].
        // Position 2: b[2]=3 not used -> 3. Position 3: b[3]=2 -> 2.
        let a = Chromosome::new(vec![0, 1, 2, 3]);
        let b = Chromosome::new(vec![1, 0, 3, 2]);
        let child = crossover(&a, &b, &mut rng);
        assert_eq!(child.genes(), &[0, 1, 3, 2]);
    }

    #[test]
    fn crossover_repairs_duplicates_from_first_half_in_order() {
        let mut rng = StdRng::seed_from_u64(14);
        // a = [0,1,2,3]; b = [2,1,0,3] (wait: b must be a permutation).
        // Child first half = [0,1]. Position 2: b[2] = 0 → duplicate;
        // scan b's first half in order: b[0] = 2 unused → take 2.
        // Position 3: b[3] = 3 unused → 3.
        let a = Chromosome::new(vec![0, 1, 2, 3]);
        let b = Chromosome::new(vec![2, 1, 0, 3]);
        let child = crossover(&a, &b, &mut rng);
        assert_eq!(child.genes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn identical_parents_reproduce_themselves() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = Chromosome::new(vec![4, 2, 0, 1, 3]);
        let child = crossover(&a, &a.clone(), &mut rng);
        assert_eq!(child, a);
    }

    #[test]
    fn mutation_preserves_permutations() {
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..100 {
            let mut c = Chromosome::random(12, &mut rng);
            mutate(&mut c, 0.5, &mut rng);
            assert!(is_permutation(c.genes()));
        }
    }

    #[test]
    fn zero_probability_never_mutates() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut c = Chromosome::random(10, &mut rng);
        let before = c.clone();
        mutate(&mut c, 0.0, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn high_probability_usually_changes() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut changed = 0;
        for _ in 0..50 {
            let mut c = Chromosome::random(10, &mut rng);
            let before = c.clone();
            mutate(&mut c, 1.0, &mut rng);
            if c != before {
                changed += 1;
            }
        }
        assert!(changed > 40, "only {changed}/50 mutated");
    }

    #[test]
    fn tiny_chromosomes_survive_mutation() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut c = Chromosome::new(vec![0]);
        mutate(&mut c, 1.0, &mut rng);
        assert_eq!(c.genes(), &[0]);
        let mut c = Chromosome::new(vec![]);
        mutate(&mut c, 1.0, &mut rng);
        assert!(c.is_empty());
    }
}
