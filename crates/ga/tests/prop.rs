//! Property-based tests for the GA operators: every operator must
//! preserve the permutation property for arbitrary parents and seeds.

use match_ga::chromosome::Chromosome;
use match_ga::operators::{crossover, mutate};
use match_ga::variants::{inversion_mutate, order_crossover, tournament_select};
use match_rngutil::perm::is_permutation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chromo(n: usize, seed: u64) -> Chromosome {
    Chromosome::random(n, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #[test]
    fn single_point_crossover_valid(n in 1usize..30, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = chromo(n, s1);
        let b = chromo(n, s2);
        let mut rng = StdRng::seed_from_u64(s1 ^ s2);
        let child = crossover(&a, &b, &mut rng);
        prop_assert_eq!(child.len(), n);
        prop_assert!(is_permutation(child.genes()));
        // First half always comes from parent 1.
        for i in 0..n / 2 {
            prop_assert_eq!(child.gene(i), a.gene(i));
        }
    }

    #[test]
    fn order_crossover_valid(n in 1usize..30, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = chromo(n, s1);
        let b = chromo(n, s2);
        let mut rng = StdRng::seed_from_u64(s1.wrapping_add(s2));
        let child = order_crossover(&a, &b, &mut rng);
        prop_assert!(is_permutation(child.genes()));
    }

    #[test]
    fn mutations_valid(n in 1usize..30, seed in any::<u64>(), p in 0.0f64..=1.0) {
        let mut c = chromo(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
        mutate(&mut c, p, &mut rng);
        prop_assert!(is_permutation(c.genes()));
        inversion_mutate(&mut c, p, &mut rng);
        prop_assert!(is_permutation(c.genes()));
    }

    #[test]
    fn tournament_in_range(len in 1usize..50, k in 1usize..10, seed in any::<u64>()) {
        let costs: Vec<f64> = (0..len).map(|i| (i as f64 * 13.7) % 97.0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let winner = tournament_select(&costs, k, &mut rng);
        prop_assert!(winner < len);
    }

    #[test]
    fn chromosome_mapping_roundtrip(n in 0usize..40, seed in any::<u64>()) {
        let c = chromo(n, seed);
        let m = c.to_mapping();
        prop_assert_eq!(Chromosome::from_mapping(&m), c);
    }
}
