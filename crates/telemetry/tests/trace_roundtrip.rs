//! End-to-end trace invariants: JSONL round-trips, summaries are
//! consistent with the in-memory aggregates, and the disabled path stays
//! cheap.

use std::borrow::Cow;
use std::time::Instant;

use match_telemetry::{
    read_trace, to_json, Event, IterEvent, JsonlRecorder, MemoryRecorder, NullRecorder, PoolEvent,
    Recorder, SpanEvent, TraceSummary,
};

/// Small xorshift generator so the property-style tests need no
/// external crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1000.0
    }
}

fn random_event(rng: &mut XorShift, i: u64) -> Event {
    match rng.next() % 7 {
        0 => Event::RunStart {
            solver: Cow::Owned(format!("solver-{}", rng.next() % 10)),
            tasks: rng.next() % 512,
            resources: rng.next() % 64,
        },
        1 => Event::Iter(IterEvent {
            iter: i,
            best: rng.next_f64(),
            mean: rng.next_f64(),
            gamma: if rng.next().is_multiple_of(2) {
                Some(rng.next_f64())
            } else {
                None
            },
            elite_size: rng.next() % 100,
            wall_ns: rng.next() % 1_000_000_000,
        }),
        2 => Event::Span(SpanEvent {
            name: ["sample", "evaluate", "update", "migrate"][(rng.next() % 4) as usize].into(),
            iter: i,
            wall_ns: rng.next() % 1_000_000,
        }),
        3 => Event::Pool(PoolEvent {
            iter: i,
            chunk: rng.next() % 16,
            len: rng.next() % 4096,
            wall_ns: rng.next() % 10_000_000,
        }),
        4 => Event::Counter {
            name: "evaluations".into(),
            value: rng.next() % 100_000,
        },
        5 => Event::Sample {
            name: "queue_depth".into(),
            value: rng.next() % 1000,
        },
        _ => Event::RunEnd {
            best: rng.next_f64(),
            iterations: rng.next() % 10_000,
            evaluations: rng.next(),
            wall_ns: rng.next(),
        },
    }
}

#[test]
fn random_traces_round_trip_through_jsonl() {
    let mut rng = XorShift(0xdeadbeefcafef00d);
    for case in 0..50 {
        let n = (rng.next() % 100 + 1) as usize;
        let events: Vec<Event> = (0..n).map(|i| random_event(&mut rng, i as u64)).collect();

        let mut sink = JsonlRecorder::new(Vec::new());
        for e in &events {
            sink.record(e.clone());
        }
        assert_eq!(sink.lines(), n as u64);
        let bytes = sink.finish().expect("in-memory writer cannot fail");

        let parsed = read_trace(bytes.as_slice()).expect("trace parses");
        assert_eq!(parsed.len(), events.len(), "case {case}");
        for (orig, back) in events.iter().zip(parsed.iter()) {
            // NaN never occurs in random_event, so equality is exact.
            assert_eq!(orig, back, "case {case}: {}", to_json(orig));
        }
    }
}

#[test]
fn summary_matches_memory_recorder_aggregates() {
    let mut rng = XorShift(42);
    let events: Vec<Event> = (0..500).map(|i| random_event(&mut rng, i)).collect();

    let mut mem = MemoryRecorder::new();
    for e in &events {
        mem.record(e.clone());
    }
    let summary = TraceSummary::from_events(&events);

    assert_eq!(summary.best_curve, mem.best_curve());
    let counter_total: u64 = summary
        .counters
        .iter()
        .find(|(name, _)| name == "evaluations")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(counter_total, mem.counter("evaluations"));
    assert_eq!(summary.pool.count(), mem.pool_hist().count());
}

#[test]
fn blank_lines_are_skipped_and_bad_lines_located() {
    let good = to_json(&Event::Counter {
        name: "x".into(),
        value: 1,
    });
    let text = format!("{good}\n\n   \n{good}\n");
    let events = read_trace(text.as_bytes()).unwrap();
    assert_eq!(events.len(), 2);

    let bad = format!("{good}\nnot json\n");
    let err = read_trace(bad.as_bytes()).unwrap_err();
    assert!(
        format!("{err}").contains("line 2"),
        "error should name line 2: {err}"
    );
}

#[test]
fn null_recorder_overhead_is_negligible() {
    // 1M virtual no-op records must complete in well under a second even
    // unoptimized; this guards against someone adding work to the
    // disabled path.
    let recorder: &mut dyn Recorder = &mut NullRecorder;
    let start = Instant::now();
    for i in 0..1_000_000u64 {
        if recorder.enabled() {
            recorder.record(Event::Counter {
                name: "never".into(),
                value: i,
            });
        }
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 1000,
        "1M disabled records took {elapsed:?}"
    );
}
