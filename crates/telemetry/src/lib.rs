//! Unified solver telemetry for the matchkit workspace.
//!
//! Every mapper in the workspace — the CE matcher, FastMap-GA, simulated
//! annealing, hill climbing, the island matcher, and the discrete-event
//! simulator — emits the same typed [`Event`] stream through a
//! [`Recorder`]. Sinks decide what happens to the stream:
//!
//! * [`NullRecorder`] — discards everything; the compiled-out fast path.
//! * [`MemoryRecorder`] — buffers events and maintains aggregate views
//!   (counters, span totals, latency histograms) for in-process analysis.
//! * [`JsonlRecorder`] — streams one JSON object per line to any
//!   [`std::io::Write`], the interchange format behind
//!   `matchctl solve --trace` and `matchctl report`.
//!
//! The crate is deliberately zero-dependency: JSON encoding and the flat
//! line parser are hand-rolled in [`json`], so pulling telemetry into a
//! solver crate adds no build weight and no feature unification pressure.
//!
//! # Cost model
//!
//! Instrumentation call sites are expected to be unconditional — solvers
//! always call [`Recorder::record`]. The cost discipline lives in the
//! sink: `NullRecorder::enabled()` returns `false` and its `record` is an
//! empty inlineable body, so the per-iteration price of a disabled trace
//! is one virtual call (or nothing at all when the call site is
//! monomorphized). Call sites that would do real work just to *build* an
//! event (e.g. reading the clock, computing a mean) should gate that work
//! on [`Recorder::enabled`].

pub mod event;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod report;

pub use event::{Event, IterEvent, PoolEvent, Span, SpanEvent, SIM_SPAN_TIME_SCALE};
pub use hist::{Histogram, LinearHistogram};
pub use json::{parse_line, to_json, ParseError};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use report::{render_diff, TraceSummary};

/// Read a full JSONL trace from a reader, one event per line.
///
/// Blank lines are skipped; any malformed line aborts with a
/// [`ParseError`] naming the offending line number.
pub fn read_trace<R: std::io::BufRead>(reader: R) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError::Io(format!("line {}: {e}", lineno + 1)))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        events.push(parse_line(trimmed).map_err(|e| e.at_line(lineno + 1))?);
    }
    Ok(events)
}

/// Read a JSONL trace from a file path.
pub fn read_trace_file(path: &std::path::Path) -> Result<Vec<Event>, ParseError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ParseError::Io(format!("{}: {e}", path.display())))?;
    read_trace(std::io::BufReader::new(file))
}
