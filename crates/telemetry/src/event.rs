//! Typed telemetry events shared by every solver in the workspace.

use std::borrow::Cow;
use std::time::Instant;

use crate::recorder::Recorder;

/// One optimizer iteration: a CE iteration, a GA generation, an SA
/// temperature epoch, or a hill-climbing restart.
///
/// `gamma` is solver-specific: the elite threshold γ for CE, the current
/// temperature for SA, and `None` where no comparable scalar exists
/// (GA generations, hill-climbing restarts).
#[derive(Debug, Clone, PartialEq)]
pub struct IterEvent {
    /// Zero-based iteration index.
    pub iter: u64,
    /// Best cost seen in this iteration.
    pub best: f64,
    /// Mean cost over the iteration's population (or `best` when the
    /// solver has no population).
    pub mean: f64,
    /// Solver-specific threshold scalar (CE γ, SA temperature).
    pub gamma: Option<f64>,
    /// Number of elite samples (0 where the notion does not apply).
    pub elite_size: u64,
    /// Wall-clock nanoseconds spent in this iteration.
    pub wall_ns: u64,
}

/// Fixed-point scale used when span events carry *simulated* time
/// instead of wall-clock nanoseconds.
///
/// The discrete-event simulator emits per-resource `res{r}:busy` /
/// `res{r}:idle` spans whose `iter` field holds the interval start and
/// whose `wall_ns` field holds the interval length, both multiplied by
/// this scale and rounded — simulated time is `f64` but the span fields
/// are integers. Consumers (e.g. `match-viz`'s Gantt-from-trace helper)
/// divide by the same constant to recover simulated time.
pub const SIM_SPAN_TIME_SCALE: f64 = 1000.0;

/// A timed phase inside an iteration, e.g. `sample`, `evaluate`,
/// `update`, `migrate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name; stable across iterations so totals can be aggregated.
    pub name: Cow<'static, str>,
    /// Iteration the span belongs to.
    pub iter: u64,
    /// Wall-clock nanoseconds covered by the span.
    pub wall_ns: u64,
}

/// One chunk dispatched by the `match-par` fork/join helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolEvent {
    /// Iteration during which the chunk ran.
    pub iter: u64,
    /// Chunk index within the dispatch.
    pub chunk: u64,
    /// Number of items in the chunk.
    pub len: u64,
    /// Wall-clock nanoseconds the chunk took.
    pub wall_ns: u64,
}

/// The event stream vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Emitted once when a solver starts on an instance.
    RunStart {
        /// Solver name as reported by `Mapper::name`.
        solver: Cow<'static, str>,
        /// Number of tasks in the instance.
        tasks: u64,
        /// Number of resources in the instance.
        resources: u64,
    },
    /// Per-iteration progress.
    Iter(IterEvent),
    /// A timed phase.
    Span(SpanEvent),
    /// A parallel chunk timing.
    Pool(PoolEvent),
    /// A monotonic counter increment (e.g. `evaluations`, `mutations`).
    Counter {
        /// Counter name.
        name: Cow<'static, str>,
        /// Amount added to the counter.
        value: u64,
    },
    /// A point sample of a gauge (e.g. simulator event-queue depth).
    Sample {
        /// Gauge name.
        name: Cow<'static, str>,
        /// Observed value.
        value: u64,
    },
    /// Emitted once when the solver finishes.
    RunEnd {
        /// Final best cost.
        best: f64,
        /// Total iterations executed.
        iterations: u64,
        /// Total candidate evaluations.
        evaluations: u64,
        /// Total wall-clock nanoseconds.
        wall_ns: u64,
    },
}

impl Event {
    /// Short tag identifying the variant; doubles as the `"ev"` field of
    /// the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::Iter(_) => "iter",
            Event::Span(_) => "span",
            Event::Pool(_) => "pool",
            Event::Counter { .. } => "counter",
            Event::Sample { .. } => "sample",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

/// A started wall-clock span. Build with [`Span::start`], then call
/// [`Span::finish`] to emit a [`SpanEvent`] to a recorder.
///
/// The clock is read unconditionally (one `Instant::now()`); call sites
/// on hot paths that want to avoid even that should gate on
/// [`Recorder::enabled`] themselves.
#[derive(Debug)]
pub struct Span {
    name: Cow<'static, str>,
    iter: u64,
    start: Instant,
}

impl Span {
    /// Start timing a named phase of iteration `iter`.
    pub fn start(name: impl Into<Cow<'static, str>>, iter: u64) -> Self {
        Span {
            name: name.into(),
            iter,
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Stop the clock and record the span.
    pub fn finish(self, recorder: &mut dyn Recorder) {
        let wall_ns = self.elapsed_ns();
        recorder.record(Event::Span(SpanEvent {
            name: self.name,
            iter: self.iter,
            wall_ns,
        }));
    }
}
