//! Hand-rolled JSONL encoding for [`Event`] streams.
//!
//! Each event becomes one flat JSON object per line with an `"ev"` tag
//! field. The parser accepts exactly that shape (flat objects with
//! string / number / null values), which keeps the crate dependency-free
//! while still producing traces any standard JSON tool can consume.
//!
//! Non-finite floats have no JSON number representation; they are
//! encoded as the strings `"inf"`, `"-inf"`, and `"nan"` and decoded
//! back to the corresponding `f64` values.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, IterEvent, PoolEvent, SpanEvent};

/// Errors produced when decoding a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line is not a flat JSON object of the expected shape.
    Syntax(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type.
    BadType(&'static str),
    /// The `"ev"` tag names no known event.
    UnknownEvent(String),
    /// An I/O failure while reading the trace.
    Io(String),
}

impl ParseError {
    /// Attach a 1-based line number for trace-level error reports.
    pub fn at_line(self, lineno: usize) -> ParseError {
        match self {
            ParseError::Syntax(m) => ParseError::Syntax(format!("line {lineno}: {m}")),
            ParseError::MissingField(f) => {
                ParseError::Syntax(format!("line {lineno}: missing field `{f}`"))
            }
            ParseError::BadType(f) => {
                ParseError::Syntax(format!("line {lineno}: bad type for field `{f}`"))
            }
            ParseError::UnknownEvent(t) => {
                ParseError::Syntax(format!("line {lineno}: unknown event `{t}`"))
            }
            ParseError::Io(m) => ParseError::Io(format!("line {lineno}: {m}")),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(m) => write!(f, "trace syntax error: {m}"),
            ParseError::MissingField(name) => write!(f, "trace line missing field `{name}`"),
            ParseError::BadType(name) => write!(f, "trace field `{name}` has the wrong type"),
            ParseError::UnknownEvent(tag) => write!(f, "unknown trace event `{tag}`"),
            ParseError::Io(m) => write!(f, "trace i/o error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Encode one event as a single-line JSON object (no trailing newline).
pub fn to_json(event: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"ev\":\"");
    s.push_str(event.tag());
    s.push('"');
    match event {
        Event::RunStart {
            solver,
            tasks,
            resources,
        } => {
            s.push_str(",\"solver\":");
            push_escaped(&mut s, solver);
            let _ = write!(s, ",\"tasks\":{tasks},\"resources\":{resources}");
        }
        Event::Iter(IterEvent {
            iter,
            best,
            mean,
            gamma,
            elite_size,
            wall_ns,
        }) => {
            let _ = write!(s, ",\"iter\":{iter},\"best\":");
            push_f64(&mut s, *best);
            s.push_str(",\"mean\":");
            push_f64(&mut s, *mean);
            s.push_str(",\"gamma\":");
            match gamma {
                Some(g) => push_f64(&mut s, *g),
                None => s.push_str("null"),
            }
            let _ = write!(s, ",\"elite_size\":{elite_size},\"wall_ns\":{wall_ns}");
        }
        Event::Span(SpanEvent {
            name,
            iter,
            wall_ns,
        }) => {
            s.push_str(",\"name\":");
            push_escaped(&mut s, name);
            let _ = write!(s, ",\"iter\":{iter},\"wall_ns\":{wall_ns}");
        }
        Event::Pool(PoolEvent {
            iter,
            chunk,
            len,
            wall_ns,
        }) => {
            let _ = write!(
                s,
                ",\"iter\":{iter},\"chunk\":{chunk},\"len\":{len},\"wall_ns\":{wall_ns}"
            );
        }
        Event::Counter { name, value } => {
            s.push_str(",\"name\":");
            push_escaped(&mut s, name);
            let _ = write!(s, ",\"value\":{value}");
        }
        Event::Sample { name, value } => {
            s.push_str(",\"name\":");
            push_escaped(&mut s, name);
            let _ = write!(s, ",\"value\":{value}");
        }
        Event::RunEnd {
            best,
            iterations,
            evaluations,
            wall_ns,
        } => {
            s.push_str(",\"best\":");
            push_f64(&mut s, *best);
            let _ = write!(
                s,
                ",\"iterations\":{iterations},\"evaluations\":{evaluations},\"wall_ns\":{wall_ns}"
            );
        }
    }
    s.push('}');
    s
}

/// A decoded flat JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    /// Numbers keep their raw text so integer fields round-trip exactly.
    Num(String),
    Null,
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError::Syntax(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Val::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid number"))?;
                Ok(Val::Num(raw.to_string()))
            }
            _ => Err(self.err("expected string, number, or null")),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Val>, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data after object"));
        }
        Ok(map)
    }
}

fn get_u64(map: &BTreeMap<String, Val>, field: &'static str) -> Result<u64, ParseError> {
    match map.get(field) {
        Some(Val::Num(raw)) => raw.parse().map_err(|_| ParseError::BadType(field)),
        Some(_) => Err(ParseError::BadType(field)),
        None => Err(ParseError::MissingField(field)),
    }
}

fn f64_from_val(v: &Val, field: &'static str) -> Result<f64, ParseError> {
    match v {
        Val::Num(raw) => raw.parse().map_err(|_| ParseError::BadType(field)),
        Val::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(ParseError::BadType(field)),
        },
        Val::Null => Err(ParseError::BadType(field)),
    }
}

fn get_f64(map: &BTreeMap<String, Val>, field: &'static str) -> Result<f64, ParseError> {
    match map.get(field) {
        Some(v) => f64_from_val(v, field),
        None => Err(ParseError::MissingField(field)),
    }
}

fn get_opt_f64(
    map: &BTreeMap<String, Val>,
    field: &'static str,
) -> Result<Option<f64>, ParseError> {
    match map.get(field) {
        Some(Val::Null) | None => Ok(None),
        Some(v) => f64_from_val(v, field).map(Some),
    }
}

fn get_string(map: &BTreeMap<String, Val>, field: &'static str) -> Result<String, ParseError> {
    match map.get(field) {
        Some(Val::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ParseError::BadType(field)),
        None => Err(ParseError::MissingField(field)),
    }
}

/// Decode one trace line back into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, ParseError> {
    let map = Scanner::new(line).object()?;
    let tag = get_string(&map, "ev")?;
    match tag.as_str() {
        "run_start" => Ok(Event::RunStart {
            solver: Cow::Owned(get_string(&map, "solver")?),
            tasks: get_u64(&map, "tasks")?,
            resources: get_u64(&map, "resources")?,
        }),
        "iter" => Ok(Event::Iter(IterEvent {
            iter: get_u64(&map, "iter")?,
            best: get_f64(&map, "best")?,
            mean: get_f64(&map, "mean")?,
            gamma: get_opt_f64(&map, "gamma")?,
            elite_size: get_u64(&map, "elite_size")?,
            wall_ns: get_u64(&map, "wall_ns")?,
        })),
        "span" => Ok(Event::Span(SpanEvent {
            name: Cow::Owned(get_string(&map, "name")?),
            iter: get_u64(&map, "iter")?,
            wall_ns: get_u64(&map, "wall_ns")?,
        })),
        "pool" => Ok(Event::Pool(PoolEvent {
            iter: get_u64(&map, "iter")?,
            chunk: get_u64(&map, "chunk")?,
            len: get_u64(&map, "len")?,
            wall_ns: get_u64(&map, "wall_ns")?,
        })),
        "counter" => Ok(Event::Counter {
            name: Cow::Owned(get_string(&map, "name")?),
            value: get_u64(&map, "value")?,
        }),
        "sample" => Ok(Event::Sample {
            name: Cow::Owned(get_string(&map, "name")?),
            value: get_u64(&map, "value")?,
        }),
        "run_end" => Ok(Event::RunEnd {
            best: get_f64(&map, "best")?,
            iterations: get_u64(&map, "iterations")?,
            evaluations: get_u64(&map, "evaluations")?,
            wall_ns: get_u64(&map, "wall_ns")?,
        }),
        other => Err(ParseError::UnknownEvent(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: Event) {
        let line = to_json(&event);
        let back = parse_line(&line).expect("round-trip parse");
        match (&event, &back) {
            // NaN != NaN, compare the encoding instead.
            (Event::Iter(a), Event::Iter(b)) if a.best.is_nan() => {
                assert!(b.best.is_nan());
            }
            _ => assert_eq!(event, back, "line was: {line}"),
        }
    }

    #[test]
    fn all_variants_round_trip() {
        roundtrip(Event::RunStart {
            solver: "match-ce".into(),
            tasks: 64,
            resources: 8,
        });
        roundtrip(Event::Iter(IterEvent {
            iter: 3,
            best: 12.5,
            mean: 19.75,
            gamma: Some(14.0),
            elite_size: 10,
            wall_ns: 123_456,
        }));
        roundtrip(Event::Iter(IterEvent {
            iter: 0,
            best: 0.1,
            mean: 0.2,
            gamma: None,
            elite_size: 0,
            wall_ns: 1,
        }));
        roundtrip(Event::Span(SpanEvent {
            name: "evaluate".into(),
            iter: 7,
            wall_ns: 999,
        }));
        roundtrip(Event::Pool(PoolEvent {
            iter: 1,
            chunk: 2,
            len: 128,
            wall_ns: 5_000,
        }));
        roundtrip(Event::Counter {
            name: "evaluations".into(),
            value: 4096,
        });
        roundtrip(Event::Sample {
            name: "queue_depth".into(),
            value: 17,
        });
        roundtrip(Event::RunEnd {
            best: 41.0,
            iterations: 100,
            evaluations: 100_000,
            wall_ns: u64::MAX,
        });
    }

    #[test]
    fn non_finite_floats_round_trip() {
        roundtrip(Event::RunEnd {
            best: f64::INFINITY,
            iterations: 1,
            evaluations: 1,
            wall_ns: 1,
        });
        roundtrip(Event::RunEnd {
            best: f64::NEG_INFINITY,
            iterations: 1,
            evaluations: 1,
            wall_ns: 1,
        });
        roundtrip(Event::Iter(IterEvent {
            iter: 0,
            best: f64::NAN,
            mean: 0.0,
            gamma: None,
            elite_size: 0,
            wall_ns: 0,
        }));
    }

    #[test]
    fn strings_with_specials_round_trip() {
        roundtrip(Event::Counter {
            name: Cow::Owned("we\"ird\\name\nwith\tctrl\u{1}".to_string()),
            value: 1,
        });
        roundtrip(Event::RunStart {
            solver: Cow::Owned("sølvér-ünïcode".to_string()),
            tasks: 1,
            resources: 1,
        });
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("").is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"ev\":\"iter\"}").is_err(), "missing fields");
        assert!(parse_line("{\"ev\":\"nope\"}").is_err(), "unknown tag");
        assert!(
            parse_line("{\"ev\":\"counter\",\"name\":3,\"value\":1}").is_err(),
            "bad type"
        );
        assert!(
            parse_line("{\"ev\":\"counter\",\"name\":\"x\",\"value\":1} extra").is_err(),
            "trailing data"
        );
    }

    #[test]
    fn exact_u64_round_trip() {
        // Values above 2^53 would be corrupted by an f64 detour.
        let event = Event::Counter {
            name: "big".into(),
            value: (1u64 << 62) + 12345,
        };
        let line = to_json(&event);
        assert_eq!(parse_line(&line).unwrap(), event);
    }
}
