//! Recorder trait and the three built-in sinks.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::Event;
use crate::hist::{Histogram, LinearHistogram};
use crate::json::to_json;

/// A sink for solver telemetry.
///
/// # Cost model
///
/// Telemetry is **disabled by default**: every solver entry point that
/// does not take an explicit recorder runs with [`NullRecorder`], whose
/// [`record`](Recorder::record) is an empty body and whose
/// [`enabled`](Recorder::enabled) returns `false`. Solvers call
/// `record` unconditionally — that costs at most one virtual dispatch
/// per event, which is noise next to a single cost-function evaluation.
///
/// Work done *before* the call is the caller's responsibility: if
/// building an event requires extra computation (reading the monotonic
/// clock, computing a population mean that the solver would not
/// otherwise need), gate it behind [`enabled`](Recorder::enabled):
///
/// ```
/// use match_telemetry::{Event, Recorder, NullRecorder};
///
/// fn hot_loop(recorder: &mut dyn Recorder) {
///     for iter in 0..3u64 {
///         // ... real work ...
///         if recorder.enabled() {
///             // only pay for event construction when someone listens
///             recorder.record(Event::Counter { name: "iters".into(), value: 1 });
///         }
///     }
/// }
/// hot_loop(&mut NullRecorder);
/// ```
///
/// Implementations must not panic on `record`; sinks with fallible
/// backends (files) buffer errors and surface them from
/// [`flush`](Recorder::flush).
pub trait Recorder {
    /// Whether events are observed at all. `false` lets call sites skip
    /// expensive event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Observe one event.
    fn record(&mut self, event: Event);

    /// Flush buffered state; returns the first buffered I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// `&mut R` forwards, so helpers can take `&mut dyn Recorder` while the
/// owner keeps using the concrete sink afterwards.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: Event) {
        (**self).record(event)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// The disabled sink: discards everything, reports `enabled() == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: Event) {}
}

/// In-memory sink: buffers the raw stream and keeps aggregate views
/// (running best curve, counter totals, per-span time, pool latency
/// histogram, gauge histograms).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<Event>,
    counters: BTreeMap<Cow<'static, str>, u64>,
    span_ns: BTreeMap<Cow<'static, str>, u64>,
    pool_hist: Histogram,
    gauges: BTreeMap<Cow<'static, str>, LinearHistogram>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The per-iteration running best: element `i` is the best cost seen
    /// in iterations `0..=i`. Monotone non-increasing by construction of
    /// the running minimum.
    pub fn best_curve(&self) -> Vec<f64> {
        let mut curve = Vec::new();
        let mut best = f64::INFINITY;
        for event in &self.events {
            if let Event::Iter(it) = event {
                best = best.min(it.best);
                curve.push(best);
            }
        }
        curve
    }

    /// The raw per-iteration bests, one per `Iter` event, in emission
    /// order and *without* the running-minimum smoothing of
    /// [`best_curve`](Self::best_curve). Two runs are trajectory-equal
    /// exactly when these sequences are bit-identical, which is what
    /// golden-trajectory regression checks pin.
    pub fn iter_bests(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|event| match event {
                Event::Iter(it) => Some(it.best),
                _ => None,
            })
            .collect()
    }

    /// Total accumulated for a named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds recorded for a named span (0 if never seen).
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.span_ns.get(name).copied().unwrap_or(0)
    }

    /// Latency histogram over all pool chunk dispatches.
    pub fn pool_hist(&self) -> &Histogram {
        &self.pool_hist
    }

    /// Histogram of a named gauge's samples, if any were recorded.
    /// Gauges use linear buckets ([`LinearHistogram`]) because their
    /// values live in a small range where power-of-two buckets would
    /// collapse distinct depths together.
    pub fn gauge_hist(&self, name: &str) -> Option<&LinearHistogram> {
        self.gauges.get(name)
    }

    /// Consume the recorder, returning the raw event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: Event) {
        match &event {
            Event::Counter { name, value } => {
                *self.counters.entry(name.clone()).or_insert(0) += value;
            }
            Event::Span(span) => {
                *self.span_ns.entry(span.name.clone()).or_insert(0) += span.wall_ns;
            }
            Event::Pool(pool) => self.pool_hist.record(pool.wall_ns),
            Event::Sample { name, value } => {
                self.gauges.entry(name.clone()).or_default().record(*value);
            }
            _ => {}
        }
        self.events.push(event);
    }
}

/// Streaming JSONL sink over any writer.
///
/// Write errors do not panic the solver: the first error is stashed and
/// returned from [`flush`](Recorder::flush); subsequent events are
/// dropped. [`JsonlRecorder::lines`] counts lines actually written.
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlRecorder::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Wrap an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and unwrap the inner writer, or return the first error.
    pub fn finish(mut self) -> io::Result<W> {
        Recorder::flush(&mut self)?;
        Ok(self.out)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: Event) {
        if self.error.is_some() {
            return;
        }
        let line = to_json(&event);
        match self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IterEvent, PoolEvent, SpanEvent};
    use crate::json::parse_line;

    fn iter_event(iter: u64, best: f64) -> Event {
        Event::Iter(IterEvent {
            iter,
            best,
            mean: best + 1.0,
            gamma: Some(best + 0.5),
            elite_size: 4,
            wall_ns: 10,
        })
    }

    #[test]
    fn null_recorder_reports_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(iter_event(0, 1.0));
        assert!(r.flush().is_ok());
    }

    #[test]
    fn memory_recorder_aggregates() {
        let mut r = MemoryRecorder::new();
        assert!(r.is_empty());
        r.record(Event::Counter {
            name: "evals".into(),
            value: 10,
        });
        r.record(Event::Counter {
            name: "evals".into(),
            value: 5,
        });
        r.record(Event::Span(SpanEvent {
            name: "sample".into(),
            iter: 0,
            wall_ns: 100,
        }));
        r.record(Event::Span(SpanEvent {
            name: "sample".into(),
            iter: 1,
            wall_ns: 50,
        }));
        r.record(Event::Pool(PoolEvent {
            iter: 0,
            chunk: 0,
            len: 32,
            wall_ns: 7,
        }));
        r.record(Event::Sample {
            name: "queue_depth".into(),
            value: 3,
        });
        assert_eq!(r.counter("evals"), 15);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.span_total_ns("sample"), 150);
        assert_eq!(r.pool_hist().count(), 1);
        assert_eq!(r.gauge_hist("queue_depth").unwrap().max(), 3);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn best_curve_is_running_minimum() {
        let mut r = MemoryRecorder::new();
        for (i, best) in [5.0, 7.0, 3.0, 4.0, 2.0].into_iter().enumerate() {
            r.record(iter_event(i as u64, best));
        }
        assert_eq!(r.best_curve(), vec![5.0, 5.0, 3.0, 3.0, 2.0]);
        for w in r.best_curve().windows(2) {
            assert!(w[1] <= w[0], "best curve must be non-increasing");
        }
        // iter_bests is the raw sequence, not the running minimum.
        assert_eq!(r.iter_bests(), vec![5.0, 7.0, 3.0, 4.0, 2.0]);
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(Event::RunStart {
            solver: "test".into(),
            tasks: 4,
            resources: 2,
        });
        r.record(iter_event(0, 9.0));
        assert_eq!(r.lines(), 2);
        let buf = r.finish().expect("no io error");
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_line(line).expect("every line parses");
        }
    }

    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk on fire"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_recorder_buffers_write_errors() {
        let mut r = JsonlRecorder::new(FailingWriter);
        r.record(iter_event(0, 1.0));
        r.record(iter_event(1, 1.0));
        assert_eq!(r.lines(), 0);
        assert!(Recorder::flush(&mut r).is_err());
        // Error is surfaced once, then the sink is drained.
        assert!(Recorder::flush(&mut r).is_ok());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut inner = MemoryRecorder::new();
        {
            let r: &mut dyn Recorder = &mut inner;
            assert!(r.enabled());
            r.record(iter_event(0, 2.0));
        }
        assert_eq!(inner.len(), 1);
    }
}
