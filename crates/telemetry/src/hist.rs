//! Fixed-bucket latency histogram.

/// A power-of-two-bucket histogram for `u64` samples (typically
/// nanosecond latencies).
///
/// Bucket `i` covers values `v` with `floor(log2(v)) + 1 == i`, i.e.
/// bucket 0 holds only `0`, bucket 1 holds `1`, bucket 2 holds `2..=3`,
/// bucket 3 holds `4..=7`, and so on — 65 buckets cover the full `u64`
/// range with no allocation and O(1) record cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate q-quantile (`0.0..=1.0`): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `q * count`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "quantile must be monotone");
            assert!(q <= h.max());
            last = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [5u64, 17, 255] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 1024, 65536] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }
}
