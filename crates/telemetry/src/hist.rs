//! Fixed-bucket histograms: power-of-two buckets for latencies,
//! linear buckets for small-range gauges.

/// A power-of-two-bucket histogram for `u64` samples (typically
/// nanosecond latencies).
///
/// Bucket `i` covers values `v` with `floor(log2(v)) + 1 == i`, i.e.
/// bucket 0 holds only `0`, bucket 1 holds `1`, bucket 2 holds `2..=3`,
/// bucket 3 holds `4..=7`, and so on — 65 buckets cover the full `u64`
/// range with no allocation and O(1) record cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate q-quantile (`0.0..=1.0`): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `q * count`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Reassemble a histogram from externally-held state — the seam
    /// `match-metrics` uses to turn one atomic shard into a snapshot
    /// that [`merge`](Self::merge) can then aggregate across shards.
    ///
    /// `count` is derived from the bucket totals; `sum` and `max` are
    /// the caller's (a `max` smaller than the top occupied bucket's
    /// lower bound would make [`quantile`](Self::quantile) lie, so it
    /// is clamped up to that bound).
    pub fn from_parts(buckets: [u64; 65], sum: u64, max: u64) -> Self {
        let count = buckets.iter().sum();
        let top = buckets.iter().rposition(|&n| n > 0);
        let floor = match top {
            // Lower bound of bucket i is 2^(i-1) for i >= 1, and 0 for
            // bucket 0 (which holds only the value 0).
            Some(i) if i >= 1 => 1u64 << (i - 1),
            _ => 0,
        };
        Histogram {
            buckets,
            count,
            sum,
            max: max.max(floor),
        }
    }
}

/// A linear-bucket histogram for `u64` samples in a small range
/// (queue depths, pool sizes, other gauge-style metrics).
///
/// [`Histogram`]'s power-of-two buckets are the right shape for
/// nanosecond latencies spanning six orders of magnitude, but they read
/// poorly for gauges: queue depths 8..=15 all collapse into one bucket,
/// so `p95` of a depth gauge jumps in powers of two. This variant uses
/// `n_buckets` fixed-width buckets of `width` each (bucket `i` covers
/// `[i*width, (i+1)*width)`) plus one overflow bucket, giving exact
/// per-value resolution for the common `width == 1` case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearHistogram {
    width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LinearHistogram {
    fn default() -> Self {
        Self::for_gauge()
    }
}

impl LinearHistogram {
    /// An empty histogram with `n_buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics when `width == 0` or `n_buckets == 0`.
    pub fn new(width: u64, n_buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        LinearHistogram {
            width,
            buckets: vec![0; n_buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The default gauge shape: width-1 buckets covering `0..256`, so
    /// queue depths and pool sizes are counted exactly.
    pub fn for_gauge() -> Self {
        Self::new(1, 256)
    }

    /// Bucket width this histogram was built with.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of regular (non-overflow) buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_index(&self, value: u64) -> Option<usize> {
        let i = (value / self.width) as usize;
        (i < self.buckets.len()).then_some(i)
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_upper(&self, i: usize) -> u64 {
        (i as u64 + 1) * self.width - 1
    }

    /// Record one sample. Samples beyond the covered range land in the
    /// overflow bucket but still contribute to count/sum/max.
    pub fn record(&mut self, value: u64) {
        match self.bucket_index(value) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that fell beyond the covered range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate q-quantile (`0.0..=1.0`): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `q * count`,
    /// clamped to the observed maximum. Exact when `width == 1` and no
    /// sample overflowed. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return self.bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics when the two histograms have different shapes (width or
    /// bucket count) — merging those would silently mis-bucket.
    pub fn merge(&mut self, other: &LinearHistogram) {
        assert_eq!(self.width, other.width, "bucket widths differ");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket counts differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "quantile must be monotone");
            assert!(q <= h.max());
            last = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [5u64, 17, 255] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 1024, 65536] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn merged_percentiles_match_single_histogram() {
        // Sharded recording (the match-metrics snapshot path): samples
        // split across 4 shards, merged, must report the same p50/p90/
        // p99 as recording every sample into one histogram.
        let mut single = Histogram::new();
        let mut shards = vec![Histogram::new(); 4];
        // A skewed latency-like distribution spanning several decades.
        for i in 0..4000u64 {
            let v = (i % 97) * (i % 97) + i / 3;
            single.record(v);
            shards[(i % 4) as usize].record(v);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile(q),
                single.quantile(q),
                "quantile {q} diverged after merge"
            );
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.sum(), single.sum());
        assert_eq!(merged.max(), single.max());
    }

    #[test]
    fn from_parts_round_trips_through_recording() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 300, 1 << 20] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(
            {
                let mut b = [0u64; 65];
                for v in [0u64, 1, 7, 300, 1 << 20] {
                    b[(64 - v.leading_zeros()) as usize] += 1;
                }
                b
            },
            h.sum(),
            h.max(),
        );
        assert_eq!(rebuilt, h);
        // A stale max is clamped up to the top occupied bucket's floor
        // so quantiles stay within the recorded range.
        let clamped = Histogram::from_parts([0; 65], 0, 0);
        assert_eq!(clamped.count(), 0);
        let mut one = [0u64; 65];
        one[21] = 1; // one sample in [2^20, 2^21)
        let fixed = Histogram::from_parts(one, 1 << 20, 0);
        assert!(fixed.quantile(1.0) >= 1 << 20);
    }

    #[test]
    fn linear_empty() {
        let h = LinearHistogram::for_gauge();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn linear_quantiles_are_exact_at_width_one() {
        // 100 samples 0..100: with width-1 buckets, quantiles are exact,
        // unlike the power-of-two histogram which rounds up to 2^k - 1.
        let mut h = LinearHistogram::new(1, 256);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 49);
        assert_eq!(h.quantile(0.95), 94);
        assert_eq!(h.quantile(1.0), 99);
        assert_eq!(h.max(), 99);
        assert!((h.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn linear_overflow_counts_but_keeps_stats() {
        let mut h = LinearHistogram::new(1, 4);
        for v in [0u64, 1, 2, 3, 10, 20] {
            h.record(v);
        }
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 20);
        assert_eq!(h.sum(), 36);
        // Overflowed samples surface via the max clamp.
        assert_eq!(h.quantile(1.0), 20);
    }

    #[test]
    fn linear_wide_buckets() {
        let mut h = LinearHistogram::new(10, 8);
        for v in [0u64, 9, 10, 25, 79] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.2), 9); // bucket [0,10) upper bound
        assert_eq!(h.quantile(1.0), 79);
    }

    #[test]
    fn linear_merge_matches_combined_recording() {
        let mut a = LinearHistogram::new(1, 16);
        let mut b = LinearHistogram::new(1, 16);
        let mut combined = LinearHistogram::new(1, 16);
        for v in [0u64, 3, 7, 200] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 15, 99] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    #[should_panic(expected = "bucket widths differ")]
    fn linear_merge_rejects_mismatched_width() {
        let mut a = LinearHistogram::new(1, 16);
        let b = LinearHistogram::new(2, 16);
        a.merge(&b);
    }

    #[test]
    fn linear_quantile_monotone() {
        let mut h = LinearHistogram::for_gauge();
        for v in 0..64u64 {
            h.record(v % 17);
        }
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "quantile must be monotone");
            assert!(q <= h.max());
            last = q;
        }
    }
}
