//! Trace summarization for `matchctl report`.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::Event;
use crate::hist::{Histogram, LinearHistogram};

/// Aggregate view of one solver trace, built from the raw event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Solver name from the `run_start` event, if present.
    pub solver: Option<String>,
    /// Instance size from `run_start`.
    pub tasks: Option<u64>,
    /// Instance size from `run_start`.
    pub resources: Option<u64>,
    /// Number of `iter` events in the trace.
    pub iterations: u64,
    /// Total evaluations from `run_end`, if present.
    pub evaluations: Option<u64>,
    /// Total wall nanoseconds from `run_end`, if present.
    pub wall_ns: Option<u64>,
    /// Best cost of the first iteration.
    pub first_best: Option<f64>,
    /// Final best cost (`run_end` if present, else running minimum).
    pub final_best: Option<f64>,
    /// Running minimum of per-iteration best costs.
    pub best_curve: Vec<f64>,
    /// First iteration index after which γ stays within tolerance of its
    /// final value (`None` when the trace carries no γ values).
    pub gamma_stable_after: Option<u64>,
    /// Per-span total nanoseconds, largest first.
    pub phases: Vec<(String, u64)>,
    /// Counter totals, alphabetical.
    pub counters: Vec<(String, u64)>,
    /// Latency histogram over pool chunk dispatches.
    pub pool: Histogram,
    /// Gauge histograms (e.g. simulator or daemon queue depth),
    /// alphabetical. Linear buckets: gauge values live in a small range
    /// where power-of-two buckets would collapse distinct depths.
    pub gauges: Vec<(String, LinearHistogram)>,
    /// Total number of events consumed.
    pub events: usize,
}

/// Relative tolerance used to declare γ stable against its final value.
const GAMMA_REL_TOL: f64 = 1e-6;

impl TraceSummary {
    /// Build a summary from an event stream (trace order).
    pub fn from_events(events: &[Event]) -> TraceSummary {
        let mut summary = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut running_best = f64::INFINITY;
        let mut spans: BTreeMap<String, u64> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, LinearHistogram> = BTreeMap::new();
        let mut gammas: Vec<f64> = Vec::new();

        for event in events {
            match event {
                Event::RunStart {
                    solver,
                    tasks,
                    resources,
                } => {
                    summary.solver = Some(solver.to_string());
                    summary.tasks = Some(*tasks);
                    summary.resources = Some(*resources);
                }
                Event::Iter(it) => {
                    summary.iterations += 1;
                    if summary.first_best.is_none() {
                        summary.first_best = Some(it.best);
                    }
                    running_best = running_best.min(it.best);
                    summary.best_curve.push(running_best);
                    if let Some(g) = it.gamma {
                        gammas.push(g);
                    }
                }
                Event::Span(span) => {
                    *spans.entry(span.name.to_string()).or_insert(0) += span.wall_ns;
                }
                Event::Pool(pool) => summary.pool.record(pool.wall_ns),
                Event::Counter { name, value } => {
                    *counters.entry(name.to_string()).or_insert(0) += value;
                }
                Event::Sample { name, value } => {
                    gauges.entry(name.to_string()).or_default().record(*value);
                }
                Event::RunEnd {
                    best,
                    evaluations,
                    wall_ns,
                    ..
                } => {
                    summary.final_best = Some(*best);
                    summary.evaluations = Some(*evaluations);
                    summary.wall_ns = Some(*wall_ns);
                }
            }
        }

        if summary.final_best.is_none() && running_best.is_finite() {
            summary.final_best = Some(running_best);
        }
        summary.gamma_stable_after = gamma_stable_after(&gammas);
        summary.phases = spans.into_iter().collect();
        summary
            .phases
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        summary.counters = counters.into_iter().collect();
        summary.gauges = gauges.into_iter().collect();
        summary
    }

    /// Human-readable multi-line report (what `matchctl report` prints).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

/// Index of the first γ after which every later γ stays within relative
/// tolerance of the final γ; `None` for empty input.
fn gamma_stable_after(gammas: &[f64]) -> Option<u64> {
    let last = *gammas.last()?;
    let tol = GAMMA_REL_TOL * (1.0 + last.abs());
    let mut stable_from = gammas.len() - 1;
    while stable_from > 0 && (gammas[stable_from - 1] - last).abs() <= tol {
        stable_from -= 1;
    }
    Some(stable_from as u64)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Sparkline of the best-cost curve, downsampled to at most `width`
/// points. Returns an empty string for traces without iterations.
fn sparkline(curve: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if curve.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = curve.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let n = curve.len().min(width);
    (0..n)
        .map(|i| {
            let v = curve[i * curve.len() / n];
            if !v.is_finite() {
                return ' ';
            }
            let level = (((v - lo) / span) * 7.0).round() as usize;
            BARS[level.min(7)]
        })
        .collect()
}

/// Signed percentage change from `a` to `b`, or `""` when undefined.
fn pct_delta(a: f64, b: f64) -> String {
    if a == 0.0 || !a.is_finite() || !b.is_finite() {
        return String::new();
    }
    format!("{:+.1}%", 100.0 * (b - a) / a)
}

/// One aligned row of the diff table.
fn diff_row(out: &mut String, name: &str, a: &str, b: &str, note: &str) {
    out.push_str(&format!("  {name:<18} {a:>16}  {b:>16}  {note}\n"));
}

/// Side-by-side comparison of two trace summaries, for
/// `matchctl report --diff A.jsonl B.jsonl`.
///
/// Renders the key run statistics of both traces in two columns with
/// signed deltas relative to A (the baseline), both convergence
/// sparklines on adjacent lines for visual comparison, the per-phase
/// wall-time budgets, and shared counters. Missing values print as `-`
/// so traces from different solvers still line up.
pub fn render_diff(a: &TraceSummary, label_a: &str, b: &TraceSummary, label_b: &str) -> String {
    fn opt<T: fmt::Display>(v: Option<T>) -> String {
        v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
    }
    let mut out = String::new();
    out.push_str(&format!("trace diff  A = {label_a}\n"));
    out.push_str(&format!("            B = {label_b}\n"));
    diff_row(&mut out, "", "A", "B", "");
    diff_row(
        &mut out,
        "solver",
        &opt(a.solver.as_deref()),
        &opt(b.solver.as_deref()),
        "",
    );
    let size = |s: &TraceSummary| match (s.tasks, s.resources) {
        (Some(t), Some(r)) => format!("{t}x{r}"),
        _ => "-".into(),
    };
    diff_row(&mut out, "instance", &size(a), &size(b), "");
    diff_row(
        &mut out,
        "iterations",
        &a.iterations.to_string(),
        &b.iterations.to_string(),
        "",
    );
    let eval_note = match (a.evaluations, b.evaluations) {
        (Some(ea), Some(eb)) => pct_delta(ea as f64, eb as f64),
        _ => String::new(),
    };
    diff_row(
        &mut out,
        "evaluations",
        &opt(a.evaluations),
        &opt(b.evaluations),
        &eval_note,
    );
    let wall_note = match (a.wall_ns, b.wall_ns) {
        (Some(wa), Some(wb)) if wb > 0 => format!("A/B = {:.2}x", wa as f64 / wb as f64),
        _ => String::new(),
    };
    diff_row(
        &mut out,
        "wall time",
        &opt(a.wall_ns.map(fmt_ns)),
        &opt(b.wall_ns.map(fmt_ns)),
        &wall_note,
    );
    let cost_note = match (a.final_best, b.final_best) {
        (Some(ca), Some(cb)) => pct_delta(ca, cb),
        _ => String::new(),
    };
    diff_row(
        &mut out,
        "final best",
        &opt(a.final_best),
        &opt(b.final_best),
        &cost_note,
    );
    if !a.best_curve.is_empty() || !b.best_curve.is_empty() {
        out.push_str(&format!(
            "  convergence A {}\n",
            sparkline(&a.best_curve, 60)
        ));
        out.push_str(&format!(
            "  convergence B {}\n",
            sparkline(&b.best_curve, 60)
        ));
    }
    let phases_a: BTreeMap<&str, u64> = a.phases.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let phases_b: BTreeMap<&str, u64> = b.phases.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut phase_names: Vec<&str> = phases_a.keys().chain(phases_b.keys()).copied().collect();
    phase_names.sort_unstable();
    phase_names.dedup();
    if !phase_names.is_empty() {
        out.push_str("  phase budgets\n");
        for name in phase_names {
            let (pa, pb) = (phases_a.get(name), phases_b.get(name));
            let note = match (pa, pb) {
                (Some(&na), Some(&nb)) => pct_delta(na as f64, nb as f64),
                _ => String::new(),
            };
            diff_row(
                &mut out,
                &format!("  {name}"),
                &opt(pa.map(|&ns| fmt_ns(ns))),
                &opt(pb.map(|&ns| fmt_ns(ns))),
                &note,
            );
        }
    }
    let counters_a: BTreeMap<&str, u64> =
        a.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let counters_b: BTreeMap<&str, u64> =
        b.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut counter_names: Vec<&str> = counters_a
        .keys()
        .chain(counters_b.keys())
        .copied()
        .collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    if !counter_names.is_empty() {
        out.push_str("  counters\n");
        for name in counter_names {
            diff_row(
                &mut out,
                &format!("  {name}"),
                &opt(counters_a.get(name)),
                &opt(counters_b.get(name)),
                "",
            );
        }
    }
    out
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace summary ({} events)", self.events)?;
        if let Some(solver) = &self.solver {
            write!(f, "  solver        {solver}")?;
            if let (Some(t), Some(r)) = (self.tasks, self.resources) {
                write!(f, "  ({t} tasks on {r} resources)")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  iterations    {}", self.iterations)?;
        if let Some(evals) = self.evaluations {
            writeln!(f, "  evaluations   {evals}")?;
        }
        if let Some(wall) = self.wall_ns {
            write!(f, "  wall time     {}", fmt_ns(wall))?;
            if let Some(per_iter) = wall.checked_div(self.iterations) {
                write!(f, "  ({} / iter)", fmt_ns(per_iter))?;
            }
            writeln!(f)?;
        }
        match (self.first_best, self.final_best) {
            (Some(first), Some(last)) => {
                writeln!(f, "  best cost     {first} -> {last}")?;
            }
            (None, Some(last)) => writeln!(f, "  best cost     {last}")?,
            _ => {}
        }
        if !self.best_curve.is_empty() {
            writeln!(f, "  convergence   {}", sparkline(&self.best_curve, 60))?;
        }
        match self.gamma_stable_after {
            Some(i) if self.iterations > 0 => {
                writeln!(
                    f,
                    "  gamma stable  after iteration {i} ({} of {} still moving)",
                    i, self.iterations
                )?;
            }
            _ => {}
        }
        if !self.phases.is_empty() {
            let total: u64 = self.phases.iter().map(|(_, ns)| ns).sum();
            writeln!(f, "  phase breakdown (total {})", fmt_ns(total))?;
            for (name, ns) in &self.phases {
                let share = if total > 0 {
                    100.0 * *ns as f64 / total as f64
                } else {
                    0.0
                };
                writeln!(f, "    {name:<12} {:>12}  {share:5.1}%", fmt_ns(*ns))?;
            }
        }
        if !self.pool.is_empty() {
            writeln!(
                f,
                "  pool chunks   {} dispatched, p50 {}, p95 {}, max {}",
                self.pool.count(),
                fmt_ns(self.pool.quantile(0.50)),
                fmt_ns(self.pool.quantile(0.95)),
                fmt_ns(self.pool.max()),
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "  counters")?;
            for (name, value) in &self.counters {
                writeln!(f, "    {name:<20} {value}")?;
            }
        }
        for (name, hist) in &self.gauges {
            writeln!(
                f,
                "  gauge {name}: n={} mean={:.1} p95={} max={}",
                hist.count(),
                hist.mean(),
                hist.quantile(0.95),
                hist.max(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IterEvent, PoolEvent, SpanEvent};

    fn iter(i: u64, best: f64, gamma: f64) -> Event {
        Event::Iter(IterEvent {
            iter: i,
            best,
            mean: best + 1.0,
            gamma: Some(gamma),
            elite_size: 8,
            wall_ns: 1000,
        })
    }

    #[test]
    fn summary_over_full_trace() {
        let events = vec![
            Event::RunStart {
                solver: "match-ce".into(),
                tasks: 32,
                resources: 4,
            },
            iter(0, 10.0, 12.0),
            iter(1, 8.0, 9.0),
            iter(2, 8.0, 8.5),
            iter(3, 7.5, 8.5),
            Event::Span(SpanEvent {
                name: "evaluate".into(),
                iter: 0,
                wall_ns: 900,
            }),
            Event::Span(SpanEvent {
                name: "sample".into(),
                iter: 0,
                wall_ns: 100,
            }),
            Event::Pool(PoolEvent {
                iter: 0,
                chunk: 0,
                len: 64,
                wall_ns: 450,
            }),
            Event::Counter {
                name: "evaluations".into(),
                value: 256,
            },
            Event::RunEnd {
                best: 7.5,
                iterations: 4,
                evaluations: 1024,
                wall_ns: 4_000_000,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.solver.as_deref(), Some("match-ce"));
        assert_eq!(s.iterations, 4);
        assert_eq!(s.first_best, Some(10.0));
        assert_eq!(s.final_best, Some(7.5));
        assert_eq!(s.best_curve, vec![10.0, 8.0, 8.0, 7.5]);
        assert_eq!(s.evaluations, Some(1024));
        // γ values: [12, 9, 8.5, 8.5] — stable from index 2 on.
        assert_eq!(s.gamma_stable_after, Some(2));
        assert_eq!(s.phases[0], ("evaluate".to_string(), 900));
        assert_eq!(s.counters, vec![("evaluations".to_string(), 256)]);
        assert_eq!(s.pool.count(), 1);
        let text = s.render();
        assert!(text.contains("match-ce"));
        assert!(text.contains("phase breakdown"));
        assert!(text.contains("gamma stable"));
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = TraceSummary::from_events(&[]);
        assert_eq!(s.iterations, 0);
        assert!(s.final_best.is_none());
        assert!(s.gamma_stable_after.is_none());
        // Rendering must not panic on the degenerate case.
        let _ = s.render();
    }

    #[test]
    fn gamma_stability_edge_cases() {
        assert_eq!(gamma_stable_after(&[]), None);
        assert_eq!(gamma_stable_after(&[5.0]), Some(0));
        assert_eq!(gamma_stable_after(&[5.0, 5.0, 5.0]), Some(0));
        assert_eq!(gamma_stable_after(&[9.0, 7.0, 5.0, 5.0]), Some(2));
        // Never stabilizes until the very end.
        assert_eq!(gamma_stable_after(&[4.0, 3.0, 2.0, 1.0]), Some(3));
    }

    #[test]
    fn diff_of_two_traces() {
        let base = vec![
            Event::RunStart {
                solver: "FastMap-GA".into(),
                tasks: 48,
                resources: 48,
            },
            iter(0, 40.0, 1.0),
            iter(1, 30.0, 1.0),
            Event::Span(SpanEvent {
                name: "evaluate".into(),
                iter: 0,
                wall_ns: 8_000,
            }),
            Event::Counter {
                name: "full_evaluations".into(),
                value: 120,
            },
            Event::RunEnd {
                best: 30.0,
                iterations: 2,
                evaluations: 120,
                wall_ns: 2_000_000,
            },
        ];
        let mut fast = base.clone();
        // The B trace: same search, half the wall time, extra counter.
        fast[3] = Event::Span(SpanEvent {
            name: "evaluate".into(),
            iter: 0,
            wall_ns: 4_000,
        });
        fast.push(Event::Counter {
            name: "delta_swaps".into(),
            value: 7,
        });
        fast[5] = Event::RunEnd {
            best: 30.0,
            iterations: 2,
            evaluations: 120,
            wall_ns: 1_000_000,
        };
        let a = TraceSummary::from_events(&base);
        let b = TraceSummary::from_events(&fast);
        let text = render_diff(&a, "seq.jsonl", &b, "batched.jsonl");
        assert!(text.contains("A = seq.jsonl"));
        assert!(text.contains("B = batched.jsonl"));
        assert!(
            text.contains("A/B = 2.00x"),
            "wall-time ratio missing:\n{text}"
        );
        assert!(text.contains("+0.0%"), "final-cost delta missing:\n{text}");
        assert!(text.contains("convergence A"));
        assert!(text.contains("convergence B"));
        assert!(text.contains("phase budgets"));
        assert!(text.contains("-50.0%"), "phase delta missing:\n{text}");
        // Counter present in only one trace renders as `-` on the other side.
        assert!(text.contains("delta_swaps"));
        let swap_line = text.lines().find(|l| l.contains("delta_swaps")).unwrap();
        assert!(swap_line.contains('-') && swap_line.contains('7'));
    }

    #[test]
    fn diff_of_empty_traces_renders() {
        let a = TraceSummary::from_events(&[]);
        let b = TraceSummary::from_events(&[]);
        let text = render_diff(&a, "a", &b, "b");
        assert!(text.contains("trace diff"));
        assert!(!text.contains("phase budgets"));
    }

    #[test]
    fn best_curve_monotone_for_any_input() {
        // Hand-rolled property check: pseudo-random traces, the running
        // best must never increase.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = (next() % 50 + 1) as usize;
            let events: Vec<Event> = (0..n)
                .map(|i| iter(i as u64, (next() % 10_000) as f64 / 10.0, 1.0))
                .collect();
            let s = TraceSummary::from_events(&events);
            assert_eq!(s.best_curve.len(), n);
            for w in s.best_curve.windows(2) {
                assert!(w[1] <= w[0], "best curve must be non-increasing");
            }
        }
    }
}
