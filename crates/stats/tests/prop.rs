//! Property-based tests for the statistics substrate.

use match_stats::*;
use proptest::prelude::*;

fn finite_samples(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, min_len..64)
}

proptest! {
    #[test]
    fn mean_is_between_min_and_max(xs in finite_samples(1)) {
        let m = mean(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(xs in finite_samples(2), shift in -1.0e5f64..1.0e5) {
        let v = sample_variance(&xs);
        prop_assert!(v >= -1e-9);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let vs = sample_variance(&shifted);
        prop_assert!((v - vs).abs() <= 1e-4 * (1.0 + v.abs()),
            "variance not shift invariant: {} vs {}", v, vs);
    }

    #[test]
    fn quantiles_are_monotone(xs in finite_samples(1), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn online_matches_two_pass(xs in finite_samples(2)) {
        let s: OnlineStats = xs.iter().copied().collect();
        prop_assert!((s.mean() - mean(&xs)).abs() <= 1e-6 * (1.0 + mean(&xs).abs()));
        let v2 = sample_variance(&xs);
        prop_assert!((s.sample_variance() - v2).abs() <= 1e-6 * (1.0 + v2.abs()));
    }

    #[test]
    fn online_merge_any_split(xs in finite_samples(2), split in 0usize..64) {
        let k = split % xs.len();
        let mut a: OnlineStats = xs[..k].iter().copied().collect();
        let b: OnlineStats = xs[k..].iter().copied().collect();
        a.merge(&b);
        let whole: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
    }

    #[test]
    fn ci_contains_sample_mean(xs in finite_samples(2), conf in 0.5f64..0.999) {
        if let Some(ci) = mean_confidence_interval(&xs, conf) {
            prop_assert!(ci.contains(ci.mean));
            prop_assert!(ci.lo <= ci.hi);
        }
    }

    #[test]
    fn anova_identical_groups_not_significant(xs in finite_samples(3)) {
        // Identical groups: zero between-group variance, F = 0.
        let r = one_way_anova(&[&xs, &xs, &xs]).unwrap();
        prop_assert!(r.f_statistic.abs() < 1e-6, "F = {}", r.f_statistic);
        prop_assert!(r.p_value > 0.99);
    }

    #[test]
    fn anova_f_nonnegative(a in finite_samples(2), b in finite_samples(2)) {
        let r = one_way_anova(&[&a, &b]).unwrap();
        prop_assert!(r.f_statistic >= 0.0 || r.f_statistic.is_infinite());
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn t_cdf_monotone_and_bounded(nu in 1.0f64..50.0, x1 in -20.0f64..20.0, x2 in -20.0f64..20.0) {
        let t = StudentT::new(nu);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let c1 = t.cdf(lo);
        let c2 = t.cdf(hi);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c1 <= c2 + 1e-12);
    }

    #[test]
    fn f_sf_complements_cdf_everywhere(d1 in 1.0f64..40.0, d2 in 1.0f64..40.0, x in 0.0f64..50.0) {
        let f = FisherF::new(d1, d2);
        prop_assert!((f.cdf(x) + f.sf(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_residuals_orthogonal(xs in proptest::collection::vec(-100.0f64..100.0, 3..32),
                                       noise in proptest::collection::vec(-1.0f64..1.0, 3..32)) {
        // Fit y = 2x + 1 + noise; the fitted line's residuals must sum to ~0.
        let n = xs.len().min(noise.len());
        let xs = &xs[..n];
        let ys: Vec<f64> = xs.iter().zip(&noise[..n]).map(|(x, e)| 2.0 * x + 1.0 + e).collect();
        if let Some(fit) = linear_regression(xs, &ys) {
            let resid_sum: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - fit.predict(x)).sum();
            prop_assert!(resid_sum.abs() < 1e-6 * (1.0 + ys.iter().map(|y| y.abs()).sum::<f64>()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }
}
