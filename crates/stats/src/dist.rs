//! Student t and Fisher F distributions.
//!
//! Both are expressed through the regularised incomplete beta function in
//! [`crate::special`]. The F distribution's survival function supplies the
//! ANOVA p-value of the paper's Table 3; the t distribution's inverse CDF
//! supplies the 95% confidence-interval half-widths.

use crate::special::incomplete_beta;

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Create a t distribution. Panics if `nu <= 0` or non-finite.
    pub fn new(nu: f64) -> Self {
        assert!(
            nu > 0.0 && nu.is_finite(),
            "degrees of freedom must be positive"
        );
        StudentT { nu }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function `P(T <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t.is_nan() {
            return f64::NAN;
        }
        // P(T <= t) = 1 - 0.5 * I_{nu/(nu+t^2)}(nu/2, 1/2) for t >= 0.
        let x = self.nu / (self.nu + t * t);
        let tail = 0.5 * incomplete_beta(self.nu / 2.0, 0.5, x);
        if t >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Inverse CDF (quantile function) by bisection on the monotone CDF.
    ///
    /// `p` must be in `(0, 1)`; endpoint values return ±infinity. Accurate
    /// to ~1e-12 in `t`, ample for confidence intervals.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        // The symmetric median is exact; the beta parametrisation
        // x = nu/(nu + t²) cannot resolve |t| below ~sqrt(eps·nu) anyway.
        if p == 0.5 {
            return 0.0;
        }
        // Expand an initial bracket, then bisect.
        let mut lo = -1.0;
        let mut hi = 1.0;
        while self.cdf(lo) > p {
            lo *= 2.0;
        }
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Two-sided critical value `t*` such that `P(|T| <= t*) = confidence`.
    pub fn two_sided_critical(&self, confidence: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0, 1)"
        );
        self.inv_cdf(0.5 + confidence / 2.0)
    }
}

/// Fisher's F distribution with `(d1, d2)` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Create an F distribution. Panics if either dof is non-positive.
    pub fn new(d1: f64, d2: f64) -> Self {
        assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
        FisherF { d1, d2 }
    }

    /// Numerator and denominator degrees of freedom.
    pub fn dof(&self) -> (f64, f64) {
        (self.d1, self.d2)
    }

    /// Cumulative distribution function `P(F <= f)`.
    pub fn cdf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        let x = self.d1 * f / (self.d1 * f + self.d2);
        incomplete_beta(self.d1 / 2.0, self.d2 / 2.0, x)
    }

    /// Survival function `P(F > f)` — the ANOVA p-value for an observed
    /// F statistic `f`.
    pub fn sf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 1.0;
        }
        // Complementary form avoids cancellation for large f.
        let x = self.d2 / (self.d1 * f + self.d2);
        incomplete_beta(self.d2 / 2.0, self.d1 / 2.0, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn t_cdf_is_half_at_zero() {
        for &nu in &[1.0, 2.0, 5.0, 30.0] {
            assert!(close(StudentT::new(nu).cdf(0.0), 0.5, 1e-14));
        }
    }

    #[test]
    fn t_cdf_symmetry() {
        let t = StudentT::new(7.0);
        for &x in &[0.5, 1.3, 2.8] {
            assert!(close(t.cdf(x) + t.cdf(-x), 1.0, 1e-13));
        }
    }

    #[test]
    fn t1_is_cauchy() {
        // For nu = 1, CDF(t) = 1/2 + atan(t)/π.
        let t = StudentT::new(1.0);
        for &x in &[-2.0f64, -0.5, 0.7, 3.0] {
            let want = 0.5 + x.atan() / std::f64::consts::PI;
            assert!(close(t.cdf(x), want, 1e-12), "x={x}");
        }
    }

    #[test]
    fn t_critical_values_match_tables() {
        // Standard two-sided 95% critical values.
        assert!(close(
            StudentT::new(29.0).two_sided_critical(0.95),
            2.045,
            2e-3
        ));
        assert!(close(
            StudentT::new(10.0).two_sided_critical(0.95),
            2.228,
            2e-3
        ));
        assert!(close(
            StudentT::new(1.0).two_sided_critical(0.95),
            12.706,
            2e-2
        ));
    }

    #[test]
    fn t_inv_cdf_roundtrip() {
        let t = StudentT::new(6.0);
        for &p in &[0.01, 0.2, 0.5, 0.77, 0.999] {
            assert!(close(t.cdf(t.inv_cdf(p)), p, 1e-10), "p={p}");
        }
    }

    #[test]
    fn f_cdf_zero_and_monotone() {
        let f = FisherF::new(3.0, 12.0);
        assert_eq!(f.cdf(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 / 5.0;
            let v = f.cdf(x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn f_cdf_matches_tables() {
        // F(0.95; 2, 87) critical value ≈ 3.101 (Table 3 shape: k=3 groups,
        // n=90 total → dof (2, 87)).
        let f = FisherF::new(2.0, 87.0);
        assert!(close(f.sf(3.101), 0.05, 2e-3));
        // F(0.95; 5, 10) ≈ 3.326.
        let f = FisherF::new(5.0, 10.0);
        assert!(close(f.sf(3.326), 0.05, 2e-3));
    }

    #[test]
    fn f_sf_complements_cdf() {
        let f = FisherF::new(4.0, 20.0);
        for &x in &[0.3, 1.0, 2.5, 10.0] {
            assert!(close(f.cdf(x) + f.sf(x), 1.0, 1e-12));
        }
    }

    #[test]
    fn f_sf_huge_statistic_is_tiny() {
        // The paper quotes F = 1547 with dof (2, 87): p must be < 1e-4.
        let f = FisherF::new(2.0, 87.0);
        assert!(f.sf(1547.0) < 1e-4);
    }

    #[test]
    fn f1_relates_to_t() {
        // If T ~ t(nu), then T² ~ F(1, nu).
        let nu = 9.0;
        let t = StudentT::new(nu);
        let f = FisherF::new(1.0, nu);
        for &x in &[0.5, 1.0, 2.0] {
            let via_t = t.cdf(x) - t.cdf(-x);
            assert!(close(f.cdf(x * x), via_t, 1e-12));
        }
    }

    #[test]
    #[should_panic]
    fn t_rejects_nonpositive_dof() {
        StudentT::new(0.0);
    }

    #[test]
    #[should_panic]
    fn f_rejects_nonpositive_dof() {
        FisherF::new(2.0, -1.0);
    }
}
