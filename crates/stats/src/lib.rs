//! Statistics substrate for the MaTCH reproduction.
//!
//! The paper's Table 3 reports a one-way ANalysis Of VAriance (ANOVA) over
//! 30 independent runs of three heuristics, together with means, medians,
//! standard deviations and 95% confidence intervals. The original authors
//! used an (unnamed) statistics package; this crate re-implements the
//! required machinery from first principles so the whole experiment is
//! self-contained:
//!
//! * [`descriptive`] — means, variances, medians, quantiles, summaries.
//! * [`online`] — Welford one-pass accumulators that can be merged across
//!   threads.
//! * [`special`] — log-gamma, beta and the regularised incomplete beta
//!   function, the numerical core behind the t and F distributions.
//! * [`dist`] — Student t and Fisher F distributions (CDF / survival /
//!   inverse CDF).
//! * [`anova`] — one-way fixed-effects ANOVA producing the F statistic and
//!   p-value quoted in Table 3.
//! * [`ci`] — t-based confidence intervals for a sample mean.
//! * [`regression`] — simple least-squares linear regression, used by the
//!   benchmark harness to check growth rates (e.g. that MaTCH's mapping
//!   time grows super-linearly in `|V_r|`).
//!
//! All routines are pure, deterministic and dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod ci;
pub mod descriptive;
pub mod dist;
pub mod online;
pub mod regression;
pub mod special;
pub mod ttest;

pub use anova::{one_way_anova, AnovaResult};
pub use ci::{mean_confidence_interval, ConfidenceInterval};
pub use descriptive::{mean, median, quantile, sample_std_dev, sample_variance, Summary};
pub use dist::{FisherF, StudentT};
pub use online::OnlineStats;
pub use regression::{linear_regression, power_law_fit, LinearFit};
pub use ttest::{welch_t_test, TTestResult};
