//! One-way fixed-effects ANOVA.
//!
//! The paper (Table 3) runs MaTCH and two configurations of FastMap-GA 30
//! times each on a 10-node instance and reports the F statistic (1547) and
//! p-value (< 0.0001) for the null hypothesis that all three heuristics
//! have equal mean execution time. This module reproduces that analysis.

use crate::descriptive::mean;
use crate::dist::FisherF;

/// Result of a one-way ANOVA over `k` groups with `n` total observations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaResult {
    /// Number of groups `k`.
    pub groups: usize,
    /// Total number of observations `n`.
    pub total_n: usize,
    /// Between-group sum of squares (treatment SS).
    pub ss_between: f64,
    /// Within-group sum of squares (error SS).
    pub ss_within: f64,
    /// Between-group degrees of freedom, `k - 1`.
    pub df_between: usize,
    /// Within-group degrees of freedom, `n - k`.
    pub df_within: usize,
    /// Mean square between, `SS_b / df_b`.
    pub ms_between: f64,
    /// Mean square within, `SS_w / df_w`.
    pub ms_within: f64,
    /// The F statistic `MS_b / MS_w`.
    pub f_statistic: f64,
    /// `P(F > f_statistic)` under the null hypothesis.
    pub p_value: f64,
}

impl AnovaResult {
    /// True when the null hypothesis is rejected at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Errors from [`one_way_anova`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnovaError {
    /// Fewer than two groups were supplied.
    TooFewGroups,
    /// A group was empty.
    EmptyGroup(usize),
    /// The within-group degrees of freedom are zero (every group has a
    /// single observation).
    NoErrorDof,
}

impl std::fmt::Display for AnovaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnovaError::TooFewGroups => write!(f, "ANOVA needs at least two groups"),
            AnovaError::EmptyGroup(i) => write!(f, "group {i} is empty"),
            AnovaError::NoErrorDof => {
                write!(
                    f,
                    "every group has one observation; no error degrees of freedom"
                )
            }
        }
    }
}

impl std::error::Error for AnovaError {}

/// One-way fixed-effects ANOVA over `groups` (each a sample of
/// observations, here: execution times of one heuristic).
///
/// Returns the full decomposition: sums of squares, mean squares, the F
/// statistic and its p-value under `F(k-1, n-k)`.
///
/// ```
/// use match_stats::one_way_anova;
///
/// let fast = [10.0, 11.0, 9.5, 10.5];
/// let slow = [20.0, 21.0, 19.5, 20.5];
/// let r = one_way_anova(&[&fast, &slow]).unwrap();
/// assert!(r.f_statistic > 100.0);
/// assert!(r.significant_at(0.001));
/// ```
pub fn one_way_anova(groups: &[&[f64]]) -> Result<AnovaResult, AnovaError> {
    if groups.len() < 2 {
        return Err(AnovaError::TooFewGroups);
    }
    for (i, g) in groups.iter().enumerate() {
        if g.is_empty() {
            return Err(AnovaError::EmptyGroup(i));
        }
    }
    let k = groups.len();
    let total_n: usize = groups.iter().map(|g| g.len()).sum();
    if total_n <= k {
        return Err(AnovaError::NoErrorDof);
    }

    let grand_sum: f64 = groups.iter().flat_map(|g| g.iter()).sum();
    let grand_mean = grand_sum / total_n as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let gm = mean(g);
        ss_between += g.len() as f64 * (gm - grand_mean) * (gm - grand_mean);
        ss_within += g.iter().map(|x| (x - gm) * (x - gm)).sum::<f64>();
    }

    let df_between = k - 1;
    let df_within = total_n - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;

    // Degenerate case: zero within-group variance. If the group means also
    // coincide the statistic is undefined (0/0 → NaN-ish); we report F = 0.
    // Otherwise the separation is perfect and F is infinite with p = 0.
    let (f_statistic, p_value) = if ms_within == 0.0 {
        if ms_between == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let f = ms_between / ms_within;
        let dist = FisherF::new(df_between as f64, df_within as f64);
        (f, dist.sf(f))
    };

    Ok(AnovaResult {
        groups: k,
        total_n,
        ss_between,
        ss_within,
        df_between,
        df_within,
        ms_between,
        ms_within,
        f_statistic,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn textbook_example() {
        // Classic 3-group example (e.g. NIST style):
        // g1 = [6, 8, 4, 5, 3, 4], g2 = [8, 12, 9, 11, 6, 8], g3 = [13, 9, 11, 8, 7, 12]
        // Grand mean = 8; SSB = 84; SSW = 68; F = (84/2)/(68/15) = 9.264...
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert_eq!(r.groups, 3);
        assert_eq!(r.total_n, 18);
        assert_eq!(r.df_between, 2);
        assert_eq!(r.df_within, 15);
        assert!(close(r.ss_between, 84.0, 1e-9));
        assert!(close(r.ss_within, 68.0, 1e-9));
        assert!(close(r.f_statistic, 42.0 / (68.0 / 15.0), 1e-9));
        // p-value for F=9.2647 with dof (2,15) is about 0.0024.
        assert!(close(r.p_value, 0.0024, 5e-4), "p = {}", r.p_value);
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.001));
    }

    #[test]
    fn identical_groups_give_f_near_zero() {
        let g = [1.0, 2.0, 3.0, 4.0];
        let r = one_way_anova(&[&g, &g, &g]).unwrap();
        assert!(close(r.f_statistic, 0.0, 1e-12));
        assert!(close(r.p_value, 1.0, 1e-9));
    }

    #[test]
    fn well_separated_groups_are_significant() {
        let g1 = [1.0, 1.1, 0.9, 1.05];
        let g2 = [10.0, 10.2, 9.8, 10.1];
        let r = one_way_anova(&[&g1, &g2]).unwrap();
        assert!(r.f_statistic > 100.0);
        assert!(r.p_value < 1e-4);
    }

    #[test]
    fn unbalanced_groups_supported() {
        let g1 = [5.0, 6.0, 7.0];
        let g2 = [5.5, 6.5];
        let g3 = [6.0, 7.0, 8.0, 9.0];
        let r = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert_eq!(r.total_n, 9);
        assert_eq!(r.df_within, 6);
        assert!(r.f_statistic.is_finite());
    }

    #[test]
    fn ss_decomposition_sums_to_total() {
        let g1 = [2.0, 4.0, 6.0];
        let g2 = [1.0, 3.0, 5.0, 7.0];
        let r = one_way_anova(&[&g1, &g2]).unwrap();
        let all: Vec<f64> = g1.iter().chain(g2.iter()).copied().collect();
        let gm = mean(&all);
        let ss_total: f64 = all.iter().map(|x| (x - gm) * (x - gm)).sum();
        assert!(close(r.ss_between + r.ss_within, ss_total, 1e-10));
    }

    #[test]
    fn zero_within_variance_separated_means() {
        let g1 = [3.0, 3.0, 3.0];
        let g2 = [9.0, 9.0, 9.0];
        let r = one_way_anova(&[&g1, &g2]).unwrap();
        assert!(r.f_statistic.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn zero_variance_equal_means() {
        let g = [4.0, 4.0];
        let r = one_way_anova(&[&g, &g]).unwrap();
        assert_eq!(r.f_statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn error_cases() {
        let g = [1.0, 2.0];
        assert_eq!(one_way_anova(&[&g]), Err(AnovaError::TooFewGroups));
        assert_eq!(one_way_anova(&[&g, &[]]), Err(AnovaError::EmptyGroup(1)));
        assert_eq!(
            one_way_anova(&[&[1.0], &[2.0]]),
            Err(AnovaError::NoErrorDof)
        );
    }
}
