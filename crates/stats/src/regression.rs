//! Simple least-squares linear regression.
//!
//! Used by the experiment harness to check scaling claims, e.g. that
//! MaTCH's mapping time grows super-linearly in the problem size while
//! FastMap-GA's is close to linear (paper Figure 8), by fitting log-log
//! slopes.

/// Result of fitting `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares fit of `ys` on `xs`.
///
/// Returns `None` when fewer than two points are given, the slices have
/// different lengths, or all `x` are identical (vertical line).
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // constant y is fit exactly by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

/// Fit `y ≈ a · x^b` by regressing `ln y` on `ln x`; returns `(a, b, r²)`.
///
/// All `x` and `y` must be strictly positive; returns `None` otherwise.
/// The exponent `b` is the growth order (e.g. ≈2 for the quadratic growth
/// of MaTCH's per-iteration sample count `N = 2|V_r|²`).
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    if xs.iter().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let fit = linear_regression(&lx, &ly)?;
    Some((fit.intercept.exp(), fit.slope, fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(close(fit.slope, 3.0, 1e-12));
        assert!(close(fit.intercept, -1.0, 1e-12));
        assert!(close(fit.r_squared, 1.0, 1e-12));
        assert!(close(fit.predict(10.0), 29.0, 1e-12));
    }

    #[test]
    fn noisy_line_has_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
        assert!(close(fit.slope, 1.0, 0.1));
    }

    #[test]
    fn constant_y_is_flat() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_regression(&xs, &ys).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_regression(&[1.0], &[2.0]).is_none());
        assert!(linear_regression(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_regression(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x * x).collect();
        let (a, b, r2) = power_law_fit(&xs, &ys).unwrap();
        assert!(close(a, 0.5, 1e-9));
        assert!(close(b, 2.0, 1e-9));
        assert!(close(r2, 1.0, 1e-12));
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(power_law_fit(&[1.0, -2.0], &[1.0, 2.0]).is_none());
        assert!(power_law_fit(&[1.0, 2.0], &[0.0, 2.0]).is_none());
    }
}
