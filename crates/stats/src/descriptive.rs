//! Descriptive statistics over slices of `f64`.
//!
//! These are the quantities quoted directly in the paper's Table 3:
//! absolute mean, standard deviation and median of the execution-time
//! samples. Quantiles additionally back the CE method itself, whose elite
//! threshold is the sample `(1 - ρ)`-quantile of the performances.

/// Arithmetic mean of `xs`. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`).
///
/// Returns `NaN` when fewer than two observations are supplied. Uses the
/// two-pass algorithm, which is numerically robust for the sample sizes
/// used in the experiments (tens to thousands of observations).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    ss / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation (square root of [`sample_variance`]).
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Population variance (divides by `n`). Returns `NaN` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Median of `xs` (average of the two central order statistics for even
/// lengths). Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` must lie in `[0, 1]`; values outside are clamped. Returns `NaN` for
/// an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over data already sorted ascending, avoiding the copy.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Smallest element, or `NaN` if empty.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Largest element, or `NaN` if empty.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// A five-number-plus summary of a sample, as reported per heuristic in
/// the paper's statistical analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample. Empty samples yield `NaN` fields and `n = 0`.
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: sample_std_dev(xs),
            median: median(xs),
            min: min(xs),
            max: max(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn sample_variance_matches_hand_computation() {
        // xs = [2, 4, 4, 4, 5, 5, 7, 9]; mean 5; SS = 32; var = 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(sample_variance(&xs), 32.0 / 7.0, 1e-12));
        assert!(close(population_variance(&xs), 4.0, 1e-12));
    }

    #[test]
    fn variance_of_singleton_is_nan() {
        assert!(sample_variance(&[1.0]).is_nan());
    }

    #[test]
    fn std_dev_is_sqrt_of_variance() {
        let xs = [1.0, 3.0, 5.0];
        assert!(close(sample_std_dev(&xs), sample_variance(&xs).sqrt(), 0.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn quantile_endpoints_are_min_and_max() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn quantile_interpolates() {
        // Sorted: [10, 20, 30, 40]; q=0.25 -> h=0.75 -> 10*(0.25)+20*(0.75)=17.5
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert!(close(quantile(&xs, 0.25), 17.5, 1e-12));
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -3.0), 1.0);
        assert_eq!(quantile(&xs, 7.0), 2.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(close(s.mean, 22.0, 1e-12));
    }

    #[test]
    fn min_max_of_empty_is_nan() {
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }
}
