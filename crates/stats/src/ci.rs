//! t-based confidence intervals for a sample mean.
//!
//! The paper's Table 3 quotes a "95% Confidence Interval for Mean" per
//! heuristic; this module computes the standard small-sample interval
//! `mean ± t*(n-1) · s / sqrt(n)`.

use crate::descriptive::{mean, sample_std_dev};
use crate::dist::StudentT;

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// True when `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True when two intervals do not overlap — the quick visual test the
    /// paper's Table 3 supports (MaTCH's interval is disjoint from both
    /// GA configurations').
    pub fn disjoint_from(&self, other: &ConfidenceInterval) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

/// Two-sided t confidence interval for the mean of `xs`.
///
/// Requires at least two observations and `0 < confidence < 1`; returns
/// `None` otherwise.
pub fn mean_confidence_interval(xs: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    if xs.len() < 2 || !(0.0..1.0).contains(&confidence) || confidence == 0.0 {
        return None;
    }
    let n = xs.len() as f64;
    let m = mean(xs);
    let s = sample_std_dev(xs);
    let t_star = StudentT::new(n - 1.0).two_sided_critical(confidence);
    let hw = t_star * s / n.sqrt();
    Some(ConfidenceInterval {
        mean: m,
        lo: m - hw,
        hi: m + hw,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn known_interval() {
        // xs = [10, 12, 14]; mean 12, s = 2, n = 3, t*(2, 95%) = 4.3027;
        // hw = 4.3027 * 2 / sqrt(3) = 4.9684.
        let ci = mean_confidence_interval(&[10.0, 12.0, 14.0], 0.95).unwrap();
        assert!(close(ci.mean, 12.0, 1e-12));
        assert!(close(ci.half_width(), 4.9684, 1e-3));
        assert!(ci.contains(12.0));
        assert!(!ci.contains(20.0));
    }

    #[test]
    fn higher_confidence_is_wider() {
        let xs = [5.0, 7.0, 9.0, 6.0, 8.0];
        let c90 = mean_confidence_interval(&xs, 0.90).unwrap();
        let c99 = mean_confidence_interval(&xs, 0.99).unwrap();
        assert!(c99.half_width() > c90.half_width());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(mean_confidence_interval(&[1.0], 0.95).is_none());
        assert!(mean_confidence_interval(&[], 0.95).is_none());
        assert!(mean_confidence_interval(&[1.0, 2.0], 0.0).is_none());
        assert!(mean_confidence_interval(&[1.0, 2.0], 1.0).is_none());
    }

    #[test]
    fn zero_variance_gives_point_interval() {
        let ci = mean_confidence_interval(&[3.0, 3.0, 3.0], 0.95).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    fn disjointness() {
        let a = ConfidenceInterval {
            mean: 1.0,
            lo: 0.5,
            hi: 1.5,
            confidence: 0.95,
        };
        let b = ConfidenceInterval {
            mean: 5.0,
            lo: 4.0,
            hi: 6.0,
            confidence: 0.95,
        };
        let c = ConfidenceInterval {
            mean: 1.4,
            lo: 1.2,
            hi: 1.6,
            confidence: 0.95,
        };
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        assert!(!a.disjoint_from(&c));
    }
}
