//! Welch's two-sample t-test (unequal variances).
//!
//! The ANOVA of Table 3 answers "are the three heuristics equal?";
//! pairwise Welch tests answer the follow-up the paper leaves implicit
//! — *which* pairs differ — without assuming equal variances (MaTCH's
//! spread differs hugely from the GA's).

use crate::descriptive::{mean, sample_variance};
use crate::dist::StudentT;

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (positive when the first sample's mean is
    /// larger).
    pub t_statistic: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub dof: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Difference of means `mean(a) − mean(b)`.
    pub mean_difference: f64,
}

impl TTestResult {
    /// True when the null (equal means) is rejected at `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's t-test on two samples. Returns `None` when either sample has
/// fewer than two observations or both variances are zero.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        // Zero variance on both sides: equal means → no evidence;
        // unequal means → infinitely strong evidence.
        return Some(if ma == mb {
            TTestResult {
                t_statistic: 0.0,
                dof: na + nb - 2.0,
                p_value: 1.0,
                mean_difference: 0.0,
            }
        } else {
            TTestResult {
                t_statistic: if ma > mb {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                dof: na + nb - 2.0,
                p_value: 0.0,
                mean_difference: ma - mb,
            }
        });
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite.
    let dof = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let dist = StudentT::new(dof.max(1.0));
    let p = 2.0 * dist.sf(t.abs());
    Some(TTestResult {
        t_statistic: t,
        dof,
        p_value: p.clamp(0.0, 1.0),
        mean_difference: ma - mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&xs, &xs).unwrap();
        assert_eq!(r.t_statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn well_separated_samples_significant() {
        let a = [10.0, 10.2, 9.8, 10.1, 9.9];
        let b = [20.0, 20.3, 19.7, 20.1, 19.9];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.t_statistic < -50.0);
        assert!(r.p_value < 1e-6);
        assert!((r.mean_difference + 10.0).abs() < 0.1);
    }

    #[test]
    fn textbook_value() {
        // Reference values computed independently with the Welch
        // formulas: t = -2.83526, dof = 27.7136.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(
            (r.t_statistic - (-2.83526)).abs() < 1e-4,
            "t = {}",
            r.t_statistic
        );
        assert!((r.dof - 27.7136).abs() < 1e-3, "dof = {}", r.dof);
        assert!(r.significant_at(0.05));
        // p ≈ 0.0085 for t = -2.835 with 27.7 dof.
        assert!((r.p_value - 0.0085).abs() < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn zero_variance_cases() {
        let a = [5.0, 5.0, 5.0];
        let b = [5.0, 5.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert_eq!(r.p_value, 1.0);
        let c = [7.0, 7.0];
        let r = welch_t_test(&a, &c).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.t_statistic.is_infinite());
    }

    #[test]
    fn tiny_samples_rejected() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t_test(&[], &[]).is_none());
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 7.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.t_statistic + r2.t_statistic).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }
}
