//! One-pass (Welford) statistics accumulators.
//!
//! The benchmark harness evaluates tens of thousands of sampled mappings
//! per CE iteration; these accumulators collect cost statistics without
//! buffering all samples, and can be merged across the worker threads of
//! `match-par` (Chan et al. parallel update).

/// Numerically stable streaming mean/variance/min/max accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean, `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, `NaN` with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation, `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation, `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), descriptive::mean(&xs), 1e-12));
        assert!(close(
            s.sample_variance(),
            descriptive::sample_variance(&xs),
            1e-12
        ));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_nan() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.sample_variance().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn singleton_has_mean_but_no_variance() {
        let s: OnlineStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert!(s.sample_variance().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ys = [10.0, -2.0, 4.4];
        let mut a: OnlineStats = xs.iter().copied().collect();
        let b: OnlineStats = ys.iter().copied().collect();
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let whole: OnlineStats = all.iter().copied().collect();
        assert_eq!(a.count(), whole.count());
        assert!(close(a.mean(), whole.mean(), 1e-12));
        assert!(close(a.sample_variance(), whole.sample_variance(), 1e-12));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [3.0, 1.0, 4.0];
        let mut a: OnlineStats = xs.iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Large common offset famously breaks the naive sum-of-squares
        // formula; Welford handles it.
        let base = 1e9;
        let xs: Vec<f64> = (0..100).map(|i| base + i as f64).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let want = descriptive::sample_variance(&xs);
        assert!(close(s.sample_variance(), want, 1e-6 * want));
    }
}
