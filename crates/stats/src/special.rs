//! Special functions: log-gamma, beta, and the regularised incomplete beta
//! function.
//!
//! These are the numerical workhorses behind the Student t and Fisher F
//! distributions in [`crate::dist`], which in turn produce the p-value the
//! paper quotes for its ANOVA test (`p < 0.0001`). Implementations follow
//! the classic formulations (Lanczos approximation; Lentz's continued
//! fraction for the incomplete beta as in *Numerical Recipes*), with
//! accuracy verified against independently tabulated values in the tests.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients).
///
/// Accurate to ~1e-13 relative error for `x > 0`. For `x <= 0` the
/// reflection formula is used; poles at non-positive integers return
/// `f64::INFINITY`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::INFINITY;
        }
        std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Natural log of the complete beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta function `I_x(a, b)`.
///
/// Computed with Lentz's modified continued-fraction algorithm, using the
/// symmetry `I_x(a,b) = 1 - I_{1-x}(b,a)` to stay in the rapidly converging
/// region. Parameters must satisfy `a > 0`, `b > 0`, `0 <= x <= 1`;
/// violations return `NaN`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    let params_valid = a > 0.0 && b > 0.0 && (0.0..=1.0).contains(&x);
    if !params_valid {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)), in log space for stability.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cf(a, b, x)
    } else {
        1.0 - (ln_front.exp() / b) * beta_cf(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                close(ln_gamma(x), f64::ln(f), 1e-12),
                "ln_gamma({x}) = {} want ln({f})",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π); Γ(3/2) = sqrt(π)/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12));
        assert!(close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(-0.5) = -2 sqrt(π); ln|Γ| = ln(2 sqrt(π)).
        let want = (2.0 * std::f64::consts::PI.sqrt()).ln();
        assert!(close(ln_gamma(-0.5), want, 1e-10));
    }

    #[test]
    fn ln_beta_symmetry_and_value() {
        // B(2,3) = 1/12.
        assert!(close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12));
        assert!(close(ln_beta(4.5, 1.25), ln_beta(1.25, 4.5), 1e-13));
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.33, 0.5, 0.9] {
            assert!(close(incomplete_beta(1.0, 1.0, x), x, 1e-13));
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.5, 4.0, 0.3), (7.0, 1.5, 0.8), (0.5, 0.5, 0.25)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-12), "({a},{b},{x}): {lhs} vs {rhs}");
        }
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.5}(0.5,0.5) = 0.5 (arcsine law).
        assert!(close(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12));
        assert!(close(incomplete_beta(0.5, 0.5, 0.5), 0.5, 1e-12));
        // I_x(1,b) = 1 - (1-x)^b.
        let x = 0.2;
        let b = 5.0;
        assert!(close(
            incomplete_beta(1.0, b, x),
            1.0 - (1.0 - x).powf(b),
            1e-12
        ));
        // I_x(a,1) = x^a.
        assert!(close(incomplete_beta(3.0, 1.0, 0.7), 0.7f64.powi(3), 1e-12));
    }

    #[test]
    fn incomplete_beta_rejects_bad_args() {
        assert!(incomplete_beta(-1.0, 2.0, 0.5).is_nan());
        assert!(incomplete_beta(1.0, 0.0, 0.5).is_nan());
        assert!(incomplete_beta(1.0, 1.0, 1.5).is_nan());
    }

    #[test]
    fn incomplete_beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = incomplete_beta(3.0, 5.0, x);
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }
}
