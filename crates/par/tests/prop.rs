//! Property-based tests for the parallel substrate: parallel results
//! must always equal their sequential counterparts.

use match_par::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_equals_sequential(len in 0usize..2000, threads in 0usize..12, mul in 1u64..1000) {
        let got = parallel_map(len, threads, |i| i as u64 * mul);
        let want: Vec<u64> = (0..len as u64).map(|i| i * mul).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_equals_sequential_sum(len in 0usize..5000, threads in 1usize..12) {
        let got = parallel_reduce(len, threads, 0u64, |i| i as u64, |a, b| a + b);
        prop_assert_eq!(got, (0..len as u64).sum::<u64>());
    }

    #[test]
    fn reduce_min_matches(data in proptest::collection::vec(-1000i64..1000, 0..800),
                          threads in 1usize..8) {
        let got = parallel_reduce(data.len(), threads, i64::MAX, |i| data[i], i64::min);
        let want = data.iter().copied().min().unwrap_or(i64::MAX);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn chunks_cover_exactly(len in 0usize..10_000, workers in 0usize..20, sz in 0usize..64) {
        for policy in [ChunkPolicy::PerWorker, ChunkPolicy::Fixed(sz), ChunkPolicy::OverSubscribe(sz)] {
            let ranges = chunk_ranges(len, workers, policy);
            let mut next = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(r.end > r.start);
                next = r.end;
            }
            prop_assert_eq!(next, len);
        }
    }

    #[test]
    fn pool_map_equals_sequential(len in 0usize..300, threads in 1usize..6) {
        let pool = WorkerPool::new(threads);
        let got = pool.map(len, Arc::new(|i| i * 7));
        let want: Vec<usize> = (0..len).map(|i| i * 7).collect();
        prop_assert_eq!(got, want);
    }
}
