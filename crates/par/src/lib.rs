//! A small data-parallel substrate for the MaTCH reproduction.
//!
//! MaTCH evaluates `N = 2|V_r|²` sampled mappings per iteration — for the
//! paper's largest configuration that is 5 000 objective evaluations per
//! iteration, each O(|V| + |E|), repeated over hundreds of iterations.
//! The evaluations are embarrassingly parallel, so the `Matcher` (and the
//! GA's population evaluation) fan them out through this crate.
//!
//! The crate deliberately implements the two classic shapes itself rather
//! than pulling a full work-stealing runtime:
//!
//! * [`scope_map`] — fork/join chunked `parallel_map` / `parallel_map_init`
//!   over an index range using `crossbeam`'s scoped threads; zero setup
//!   cost per call site, borrows allowed.
//! * [`pool`] — a persistent [`pool::WorkerPool`] with a shared injector
//!   queue and a wait-group, for callers that dispatch many small batches
//!   and cannot afford per-batch thread spawns.
//! * [`chunk`] — the chunk-partitioning policy shared by both.
//!
//! All APIs are deterministic in their *results* (outputs land at their
//! input's index) though of course not in execution order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod pool;
pub mod scope_map;

pub use chunk::{chunk_ranges, ChunkPolicy};
pub use pool::WorkerPool;
pub use scope_map::{
    parallel_fill, parallel_fill_rows, parallel_fill_rows_chunked, parallel_map, parallel_map_init,
    parallel_map_timed, parallel_reduce, ChunkTiming,
};

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 16 (the experiment harness saturates memory
/// bandwidth well before that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}
