//! Chunk partitioning for parallel loops.
//!
//! Both the fork/join map and the worker pool split an index range
//! `0..len` into contiguous chunks, one or more per worker. Objective
//! evaluations in MaTCH all cost roughly the same, so plain block
//! partitioning is near-optimal; a finer-grained policy is provided for
//! irregular workloads (e.g. simulating instances of mixed sizes).

/// How to split an index range across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// One contiguous chunk per worker (minimal scheduling overhead;
    /// best for uniform work items).
    #[default]
    PerWorker,
    /// Fixed chunk size; more chunks than workers gives dynamic load
    /// balancing when items have irregular cost.
    Fixed(usize),
    /// Aim for roughly `factor` chunks per worker (e.g. 4 for mildly
    /// irregular items).
    OverSubscribe(usize),
}

/// Split `0..len` into contiguous non-empty ranges per `policy` for
/// `workers` workers. The ranges cover the input exactly, in order.
pub fn chunk_ranges(
    len: usize,
    workers: usize,
    policy: ChunkPolicy,
) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    let chunk_size = match policy {
        ChunkPolicy::PerWorker => len.div_ceil(workers),
        ChunkPolicy::Fixed(sz) => sz.max(1),
        ChunkPolicy::OverSubscribe(factor) => len.div_ceil(workers * factor.max(1)).max(1),
    };
    let mut out = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(ranges: &[std::ops::Range<usize>], len: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "gap or overlap at {}", r.start);
            assert!(r.end > r.start, "empty chunk");
            next = r.end;
        }
        assert_eq!(next, len, "does not cover the whole range");
    }

    #[test]
    fn empty_range_no_chunks() {
        assert!(chunk_ranges(0, 4, ChunkPolicy::PerWorker).is_empty());
    }

    #[test]
    fn per_worker_gives_at_most_worker_chunks() {
        for len in [1, 5, 16, 17, 100] {
            for workers in [1, 3, 8] {
                let ranges = chunk_ranges(len, workers, ChunkPolicy::PerWorker);
                assert!(ranges.len() <= workers, "len={len} workers={workers}");
                covers_exactly(&ranges, len);
            }
        }
    }

    #[test]
    fn fixed_chunk_size_respected() {
        let ranges = chunk_ranges(10, 4, ChunkPolicy::Fixed(3));
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..3);
        assert_eq!(ranges[3], 9..10);
        covers_exactly(&ranges, 10);
    }

    #[test]
    fn fixed_zero_clamped_to_one() {
        let ranges = chunk_ranges(3, 2, ChunkPolicy::Fixed(0));
        assert_eq!(ranges.len(), 3);
        covers_exactly(&ranges, 3);
    }

    #[test]
    fn oversubscribe_produces_more_chunks() {
        let per_worker = chunk_ranges(100, 4, ChunkPolicy::PerWorker).len();
        let over = chunk_ranges(100, 4, ChunkPolicy::OverSubscribe(4)).len();
        assert!(over > per_worker);
        covers_exactly(&chunk_ranges(100, 4, ChunkPolicy::OverSubscribe(4)), 100);
    }

    #[test]
    fn zero_workers_clamped() {
        let ranges = chunk_ranges(7, 0, ChunkPolicy::PerWorker);
        covers_exactly(&ranges, 7);
    }

    #[test]
    fn single_item() {
        let ranges = chunk_ranges(1, 8, ChunkPolicy::OverSubscribe(4));
        assert_eq!(ranges, vec![0..1]);
    }
}
