//! A persistent worker pool.
//!
//! The fork/join helpers in [`crate::scope_map`] spawn threads per call,
//! which is fine for the hundreds of CE iterations of a single MaTCH run
//! but wasteful for the experiment harness, which runs thousands of small
//! solver invocations back to back (30 ANOVA repetitions × 3 heuristics ×
//! parameter sweeps). The pool keeps its workers alive across batches.
//!
//! Jobs are `'static` closures sent over a `crossbeam` channel; a
//! wait-group built from `parking_lot` primitives implements
//! [`WorkerPool::run_batch`], which blocks until every job of the batch
//! has finished.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counts outstanding jobs of one batch and wakes the submitter at zero.
struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(WaitGroup {
            count: Mutex::new(n),
            zero: Condvar::new(),
        })
    }

    fn done(&self) {
        let mut c = self.count.lock();
        *c -= 1;
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            self.zero.wait(&mut c);
        }
    }
}

/// A fixed-size pool of worker threads consuming a shared job queue.
///
/// Dropping the pool closes the queue and joins all workers.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("match-par-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit one fire-and-forget job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Run a batch of jobs and block until all of them complete.
    ///
    /// Jobs may run on any worker in any order. A panicking job poisons
    /// nothing but its own thread's current job; the batch still
    /// completes for the remaining jobs (the panic is reported when the
    /// pool is dropped).
    pub fn run_batch<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        let jobs: Vec<_> = jobs.into_iter().collect();
        if jobs.is_empty() {
            return;
        }
        let wg = WaitGroup::new(jobs.len());
        for job in jobs {
            let wg = Arc::clone(&wg);
            self.submit(move || {
                // Ensure the wait-group is decremented even if `job`
                // panics, so the submitter is never dead-locked.
                struct Guard(Arc<WaitGroup>);
                impl Drop for Guard {
                    fn drop(&mut self) {
                        self.0.done();
                    }
                }
                let _g = Guard(wg);
                job();
            });
        }
        wg.wait();
    }

    /// Convenience: evaluate `f(i)` for `i in 0..len` on the pool and
    /// collect results in order. Results are written through a mutex-free
    /// per-slot channel-less scheme: each job owns its output slot.
    pub fn map<T, F>(&self, len: usize, f: Arc<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        let results: Vec<Arc<Mutex<Option<T>>>> =
            (0..len).map(|_| Arc::new(Mutex::new(None))).collect();
        self.run_batch((0..len).map(|i| {
            let slot = Arc::clone(&results[i]);
            let f = Arc::clone(&f);
            move || {
                *slot.lock() = Some(f(i));
            }
        }));
        results
            .into_iter()
            .map(|slot| {
                Arc::try_unwrap(slot)
                    .ok()
                    .expect("no other owners")
                    .into_inner()
                    .expect("job ran")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_runs_every_job_once() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.run_batch((0..100).map(|_| {
            let c = Arc::clone(&counter);
            move || {
                c.fetch_add(1, Ordering::SeqCst);
            }
        }));
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_batch(Vec::<fn()>::new());
    }

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map(50, Arc::new(|i| i * 3));
        assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_batches_reuse_workers() {
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let counter = Arc::new(AtomicUsize::new(0));
            pool.run_batch((0..20).map(|_| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            }));
            assert_eq!(counter.load(Ordering::SeqCst), 20, "round {round}");
        }
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(5, Arc::new(|i| i));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // must not hang, and all submitted jobs drain
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn jobs_run_concurrently() {
        // With 4 workers, 4 jobs that each wait for the others via a
        // barrier can only finish if they truly run in parallel.
        let pool = WorkerPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        pool.run_batch((0..4).map(|_| {
            let b = Arc::clone(&barrier);
            move || {
                b.wait();
            }
        }));
    }
}
