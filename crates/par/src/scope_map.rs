//! Fork/join parallel map and reduce over index ranges.
//!
//! Built on `crossbeam::thread::scope`, so closures may borrow from the
//! caller's stack (the MaTCH sampler borrows the instance's cost tables).
//! Threads are spawned per call; for many tiny batches use
//! [`crate::pool::WorkerPool`] instead.

use crate::chunk::{chunk_ranges, ChunkPolicy};

/// Apply `f(i)` for every `i in 0..len` in parallel, collecting results in
/// input order.
///
/// `f` must be `Sync` (shared across workers by reference). With
/// `threads <= 1` or `len < parallel_threshold()` the loop runs inline,
/// avoiding spawn overhead for the small instances of the paper's sweep.
///
/// ```
/// let squares = match_par::parallel_map(1000, 4, |i| i * i);
/// assert_eq!(squares[31], 961);
/// ```
pub fn parallel_map<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_init(len, threads, || (), move |(), i| f(i))
}

/// Like [`parallel_map`], but each worker first builds a per-thread state
/// with `init` (e.g. a scratch buffer or an RNG) that is passed by mutable
/// reference to every call it executes.
pub fn parallel_map_init<T, S, I, F>(len: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(len, || None);
    parallel_fill(&mut out, threads, init, |state, i, slot| {
        *slot = Some(f(state, i));
    });
    out.into_iter()
        .map(|x| x.expect("every index filled"))
        .collect()
}

/// Wall-clock timing of one chunk dispatched by [`parallel_map_timed`].
///
/// `match-par` stays telemetry-agnostic: callers that trace convert these
/// into their own event types (match-core turns them into pool events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Chunk index within the dispatch (0-based).
    pub chunk: u64,
    /// Number of items the chunk processed.
    pub len: u64,
    /// Wall-clock nanoseconds the chunk's worker spent on it.
    pub wall_ns: u64,
}

/// [`parallel_map`] that also reports per-chunk wall-clock timings, so
/// callers can observe dispatch imbalance. The inline path (single
/// thread or small input) reports one chunk covering the whole range.
pub fn parallel_map_timed<T, F>(len: usize, threads: usize, f: F) -> (Vec<T>, Vec<ChunkTiming>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::time::Instant;

    let threads = threads.max(1);
    if threads == 1 || len < parallel_threshold() {
        let start = Instant::now();
        let out: Vec<T> = (0..len).map(&f).collect();
        let timings = if len == 0 {
            Vec::new()
        } else {
            vec![ChunkTiming {
                chunk: 0,
                len: len as u64,
                wall_ns: start.elapsed().as_nanos() as u64,
            }]
        };
        return (out, timings);
    }

    let ranges = chunk_ranges(len, threads, ChunkPolicy::PerWorker);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(len, || None);
    let mut pieces: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(ranges.len());
    let mut rest = out.as_mut_slice();
    let mut offset = 0;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        pieces.push((offset, head));
        rest = tail;
        offset += r.len();
    }
    let timings: Vec<ChunkTiming> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .into_iter()
            .enumerate()
            .map(|(chunk, (base, piece))| {
                let f = &f;
                scope.spawn(move |_| {
                    let start = Instant::now();
                    let n = piece.len();
                    for (k, slot) in piece.iter_mut().enumerate() {
                        *slot = Some(f(base + k));
                    }
                    ChunkTiming {
                        chunk: chunk as u64,
                        len: n as u64,
                        wall_ns: start.elapsed().as_nanos() as u64,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");
    let out = out
        .into_iter()
        .map(|x| x.expect("every index filled"))
        .collect();
    (out, timings)
}

/// Fill `out` in parallel: `f(state, i, &mut out[i])` runs once per index,
/// with per-worker `state` from `init`. Writes happen directly into the
/// caller's buffer, so repeated batches can reuse one allocation.
pub fn parallel_fill<T, S, I, F>(out: &mut [T], threads: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let len = out.len();
    let threads = threads.max(1);
    if threads == 1 || len < parallel_threshold() {
        let mut state = init();
        for (i, slot) in out.iter_mut().enumerate() {
            f(&mut state, i, slot);
        }
        return;
    }
    let ranges = chunk_ranges(len, threads, ChunkPolicy::PerWorker);
    // Hand each worker a disjoint sub-slice; indices are reconstructed
    // from the chunk offset.
    let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut offset = 0;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        pieces.push((offset, head));
        rest = tail;
        offset += r.len();
    }
    crossbeam::thread::scope(|scope| {
        for (base, piece) in pieces {
            let f = &f;
            let init = &init;
            scope.spawn(move |_| {
                let mut state = init();
                for (k, slot) in piece.iter_mut().enumerate() {
                    f(&mut state, base + k, slot);
                }
            });
        }
    })
    .expect("worker panicked");
}

/// Fill `aux.len()` disjoint `width`-sized rows of `data` — plus one
/// `aux` slot per row — in parallel, with per-worker state, returning
/// per-chunk wall-clock timings.
///
/// This is the fused produce-and-score primitive: `f(state, i, row, aux)`
/// runs once per row `i`, receiving the row's `&mut [T]` slice of the
/// flat `rows × width` buffer and the row's `&mut U` slot (typically its
/// cost). Both buffers are caller-owned, so repeated batches reuse one
/// allocation each. `data.len()` must equal `aux.len() * width`.
///
/// Chunking, the inline fast path (`threads <= 1` or fewer rows than
/// [`parallel_threshold`]) and result determinism match [`parallel_fill`].
pub fn parallel_fill_rows<T, U, S, I, F>(
    data: &mut [T],
    aux: &mut [U],
    width: usize,
    threads: usize,
    init: I,
    f: F,
) -> Vec<ChunkTiming>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T], &mut U) + Sync,
{
    use std::time::Instant;

    let rows = aux.len();
    assert_eq!(
        data.len(),
        rows.checked_mul(width).expect("rows × width overflows"),
        "data must hold rows × width items"
    );
    let threads = threads.max(1);
    if threads == 1 || rows < parallel_threshold() {
        let start = Instant::now();
        let mut state = init();
        let mut rest: &mut [T] = data;
        for (i, slot) in aux.iter_mut().enumerate() {
            let (row, tail) = rest.split_at_mut(width);
            rest = tail;
            f(&mut state, i, row, slot);
        }
        return if rows == 0 {
            Vec::new()
        } else {
            vec![ChunkTiming {
                chunk: 0,
                len: rows as u64,
                wall_ns: start.elapsed().as_nanos() as u64,
            }]
        };
    }

    let ranges = chunk_ranges(rows, threads, ChunkPolicy::PerWorker);
    let mut pieces: Vec<(usize, &mut [T], &mut [U])> = Vec::with_capacity(ranges.len());
    let mut data_rest = data;
    let mut aux_rest = aux;
    let mut offset = 0;
    for r in &ranges {
        let (data_head, data_tail) = data_rest.split_at_mut(r.len() * width);
        let (aux_head, aux_tail) = aux_rest.split_at_mut(r.len());
        pieces.push((offset, data_head, aux_head));
        data_rest = data_tail;
        aux_rest = aux_tail;
        offset += r.len();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .into_iter()
            .enumerate()
            .map(|(chunk, (base, data_piece, aux_piece))| {
                let f = &f;
                let init = &init;
                scope.spawn(move |_| {
                    let start = Instant::now();
                    let mut state = init();
                    let n = aux_piece.len();
                    let mut rest: &mut [T] = data_piece;
                    for (k, slot) in aux_piece.iter_mut().enumerate() {
                        let (row, tail) = rest.split_at_mut(width);
                        rest = tail;
                        f(&mut state, base + k, row, slot);
                    }
                    ChunkTiming {
                        chunk: chunk as u64,
                        len: n as u64,
                        wall_ns: start.elapsed().as_nanos() as u64,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed")
}

/// Like [`parallel_fill_rows`], but hands each worker its **whole
/// chunk** at once: `f(state, base, chunk_data, chunk_aux)` where
/// `chunk_data` covers `chunk_aux.len()` rows of `width` items starting
/// at global row `base`. Batch evaluators want this shape — they
/// amortise per-call setup (a structure-of-arrays transpose, lane
/// buffers) across a chunk instead of paying it per row.
///
/// Chunk boundaries follow [`crate::chunk::chunk_ranges`] with
/// `ChunkPolicy::PerWorker`, and the inline fast path (`threads <= 1`
/// or fewer rows than [`parallel_threshold`]) passes the entire buffer
/// as one chunk — identical to [`parallel_fill_rows`], so a caller
/// whose `f` is row-order-deterministic gets the same results here.
pub fn parallel_fill_rows_chunked<T, U, S, I, F>(
    data: &mut [T],
    aux: &mut [U],
    width: usize,
    threads: usize,
    init: I,
    f: F,
) -> Vec<ChunkTiming>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T], &mut [U]) + Sync,
{
    use std::time::Instant;

    let rows = aux.len();
    assert_eq!(
        data.len(),
        rows.checked_mul(width).expect("rows × width overflows"),
        "data must hold rows × width items"
    );
    let threads = threads.max(1);
    if threads == 1 || rows < parallel_threshold() {
        let start = Instant::now();
        let mut state = init();
        f(&mut state, 0, data, aux);
        return if rows == 0 {
            Vec::new()
        } else {
            vec![ChunkTiming {
                chunk: 0,
                len: rows as u64,
                wall_ns: start.elapsed().as_nanos() as u64,
            }]
        };
    }

    let ranges = chunk_ranges(rows, threads, ChunkPolicy::PerWorker);
    let mut pieces: Vec<(usize, &mut [T], &mut [U])> = Vec::with_capacity(ranges.len());
    let mut data_rest = data;
    let mut aux_rest = aux;
    let mut offset = 0;
    for r in &ranges {
        let (data_head, data_tail) = data_rest.split_at_mut(r.len() * width);
        let (aux_head, aux_tail) = aux_rest.split_at_mut(r.len());
        pieces.push((offset, data_head, aux_head));
        data_rest = data_tail;
        aux_rest = aux_tail;
        offset += r.len();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .into_iter()
            .enumerate()
            .map(|(chunk, (base, data_piece, aux_piece))| {
                let f = &f;
                let init = &init;
                scope.spawn(move |_| {
                    let start = Instant::now();
                    let mut state = init();
                    let n = aux_piece.len();
                    f(&mut state, base, data_piece, aux_piece);
                    ChunkTiming {
                        chunk: chunk as u64,
                        len: n as u64,
                        wall_ns: start.elapsed().as_nanos() as u64,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed")
}

/// Parallel reduction: map each index through `f`, then fold results with
/// the associative `combine`, starting from `identity`.
///
/// `combine` must be associative and `identity` its neutral element;
/// the grouping of operands across chunks is unspecified.
pub fn parallel_reduce<T, F, C>(len: usize, threads: usize, identity: T, f: F, combine: C) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Send + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || len < parallel_threshold() {
        let mut acc = identity;
        for i in 0..len {
            acc = combine(acc, f(i));
        }
        return acc;
    }
    let ranges = chunk_ranges(len, threads, ChunkPolicy::PerWorker);
    let partials: Vec<T> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                let combine = &combine;
                let id = identity.clone();
                scope.spawn(move |_| {
                    let mut acc = id;
                    for i in r {
                        acc = combine(acc, f(i));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");
    partials.into_iter().fold(identity, combine)
}

/// Below this many items the fork/join overhead outweighs the win and the
/// operations run inline.
pub const fn parallel_threshold() -> usize {
    64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential() {
        for threads in [1, 2, 4, 8] {
            for len in [0, 1, 63, 64, 65, 1000] {
                let got = parallel_map(len, threads, |i| i * i);
                let want: Vec<usize> = (0..len).map(|i| i * i).collect();
                assert_eq!(got, want, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn map_preserves_order_with_uneven_work() {
        // Make later items finish first to catch order bugs.
        let got = parallel_map(200, 4, |i| {
            if i < 100 {
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let builds = AtomicUsize::new(0);
        let _ = parallel_map_init(
            1000,
            4,
            || {
                builds.fetch_add(1, Ordering::SeqCst);
                0u64
            },
            |state, i| {
                *state += 1;
                i
            },
        );
        let n = builds.load(Ordering::SeqCst);
        assert!((1..=4).contains(&n), "built {n} states");
    }

    #[test]
    fn fill_reuses_buffer() {
        let mut buf = vec![0usize; 500];
        parallel_fill(&mut buf, 4, || (), |(), i, slot| *slot = i + 1);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
        // Second pass over the same buffer.
        parallel_fill(&mut buf, 4, || (), |(), i, slot| *slot = 2 * i);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn fill_rows_matches_sequential() {
        for threads in [1, 2, 4, 8] {
            for rows in [0usize, 1, 63, 64, 65, 500] {
                let width = 3;
                let mut data = vec![0usize; rows * width];
                let mut aux = vec![0.0f64; rows];
                let timings = parallel_fill_rows(
                    &mut data,
                    &mut aux,
                    width,
                    threads,
                    || (),
                    |(), i, row, a| {
                        for (k, slot) in row.iter_mut().enumerate() {
                            *slot = i * width + k;
                        }
                        *a = i as f64;
                    },
                );
                assert!(
                    data.iter().enumerate().all(|(j, &v)| v == j),
                    "threads={threads} rows={rows}"
                );
                assert!(aux.iter().enumerate().all(|(i, &v)| v == i as f64));
                let covered: u64 = timings.iter().map(|t| t.len).sum();
                assert_eq!(covered, rows as u64, "timings must cover all rows");
            }
        }
    }

    #[test]
    fn fill_rows_builds_one_state_per_worker() {
        let builds = AtomicUsize::new(0);
        let mut data = vec![0u8; 1000];
        let mut aux = vec![0u8; 1000];
        parallel_fill_rows(
            &mut data,
            &mut aux,
            1,
            4,
            || {
                builds.fetch_add(1, Ordering::SeqCst);
            },
            |(), _, _, _| {},
        );
        let n = builds.load(Ordering::SeqCst);
        assert!((1..=4).contains(&n), "built {n} states");
    }

    #[test]
    fn fill_rows_chunked_matches_sequential() {
        for threads in [1, 2, 4, 8] {
            for rows in [0usize, 1, 63, 64, 65, 500] {
                let width = 3;
                let mut data = vec![0usize; rows * width];
                let mut aux = vec![0.0f64; rows];
                let timings = parallel_fill_rows_chunked(
                    &mut data,
                    &mut aux,
                    width,
                    threads,
                    || (),
                    |(), base, chunk_data, chunk_aux| {
                        assert_eq!(chunk_data.len(), chunk_aux.len() * width);
                        for (k, slot) in chunk_aux.iter_mut().enumerate() {
                            let i = base + k;
                            for (j, cell) in chunk_data[k * width..(k + 1) * width]
                                .iter_mut()
                                .enumerate()
                            {
                                *cell = i * width + j;
                            }
                            *slot = i as f64;
                        }
                    },
                );
                assert!(
                    data.iter().enumerate().all(|(j, &v)| v == j),
                    "threads={threads} rows={rows}"
                );
                assert!(aux.iter().enumerate().all(|(i, &v)| v == i as f64));
                let covered: u64 = timings.iter().map(|t| t.len).sum();
                assert_eq!(covered, rows as u64, "timings must cover all rows");
            }
        }
    }

    #[test]
    fn fill_rows_chunked_small_input_is_one_chunk() {
        let rows = parallel_threshold() - 1;
        let mut data = vec![0u8; rows];
        let mut aux = vec![0u8; rows];
        let timings =
            parallel_fill_rows_chunked(&mut data, &mut aux, 1, 8, || (), |(), _, _, _| {});
        assert_eq!(timings.len(), 1, "inline path must report one chunk");
        assert_eq!(timings[0].len, rows as u64);
    }

    #[test]
    #[should_panic(expected = "rows × width")]
    fn fill_rows_chunked_rejects_mismatched_buffers() {
        let mut data = vec![0usize; 10];
        let mut aux = vec![0.0f64; 4];
        parallel_fill_rows_chunked(&mut data, &mut aux, 3, 2, || (), |(), _, _, _| {});
    }

    #[test]
    #[should_panic(expected = "rows × width")]
    fn fill_rows_rejects_mismatched_buffers() {
        let mut data = vec![0usize; 10];
        let mut aux = vec![0.0f64; 4];
        parallel_fill_rows(&mut data, &mut aux, 3, 2, || (), |(), _, _, _| {});
    }

    #[test]
    fn reduce_matches_sequential_sum() {
        for threads in [1, 3, 8] {
            let got = parallel_reduce(10_000, threads, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(got, (0..10_000u64).sum::<u64>(), "threads={threads}");
        }
    }

    #[test]
    fn reduce_with_min() {
        let data: Vec<i64> = (0..5000)
            .map(|i| ((i * 7919) % 4999) as i64 - 2500)
            .collect();
        let got = parallel_reduce(data.len(), 4, i64::MAX, |i| data[i], i64::min);
        assert_eq!(got, *data.iter().min().unwrap());
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let got = parallel_reduce(0, 4, 42i32, |_| 0, |a, b| a + b);
        assert_eq!(got, 42);
    }

    #[test]
    fn small_input_runs_inline() {
        // Can't observe threads directly, but results must still be right
        // below the threshold.
        let got = parallel_map(parallel_threshold() - 1, 8, |i| i + 1);
        assert_eq!(got.len(), parallel_threshold() - 1);
        assert_eq!(got[0], 1);
    }

    #[test]
    fn zero_threads_clamped() {
        let got = parallel_map(100, 0, |i| i);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn timed_map_matches_sequential_and_covers_len() {
        for threads in [1, 4] {
            for len in [0, 10, 64, 1000] {
                let (got, timings) = parallel_map_timed(len, threads, |i| i * 3);
                let want: Vec<usize> = (0..len).map(|i| i * 3).collect();
                assert_eq!(got, want, "threads={threads} len={len}");
                let covered: u64 = timings.iter().map(|t| t.len).sum();
                assert_eq!(covered, len as u64, "timings must cover all items");
                if len == 0 {
                    assert!(timings.is_empty());
                }
                // Chunk indices are dense from zero.
                for (i, t) in timings.iter().enumerate() {
                    assert_eq!(t.chunk, i as u64);
                }
            }
        }
    }

    #[test]
    fn timed_map_spawns_multiple_chunks_for_large_input() {
        let (_, timings) = parallel_map_timed(1000, 4, |i| i);
        assert!(timings.len() > 1, "expected parallel dispatch");
    }
}
