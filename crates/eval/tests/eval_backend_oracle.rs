//! Property-based Simd-vs-Scalar oracle: on random instances — square,
//! rectangular, zero-weight edges, heavily co-located, non-zero link
//! diagonals, up to 512 tasks — the two backends must agree **bitwise**
//! on every per-resource load and every Eq. 2 cost.

use match_eval::{EvalBackend, InstancePlan, LANES};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawInstance {
    task_comp: Vec<f64>,
    adj_offsets: Vec<u32>,
    adj_targets: Vec<u32>,
    adj_volumes: Vec<f64>,
    proc_cost: Vec<f64>,
    link: Vec<f64>,
    rows: Vec<usize>,
    n_rows: usize,
}

impl RawInstance {
    fn plan(&self) -> InstancePlan {
        InstancePlan::new(
            self.task_comp.clone(),
            self.adj_offsets.clone(),
            self.adj_targets.clone(),
            self.adj_volumes.clone(),
            self.proc_cost.clone(),
            self.link.clone(),
        )
    }
}

/// SplitMix64 used to expand one drawn seed into a whole instance (the
/// vendored proptest stub has no dependent-size strategies, so sizes
/// come from the strategy and contents from the seed).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Positive weight with odd mantissas: exact agreement on these
    /// would not survive any hidden FP reassociation, unlike agreement
    /// on neat power-of-two values.
    fn weight(&mut self) -> f64 {
        0.001 + 999.0 * self.unit()
    }
    /// Interaction volume, exactly zero one time in four (zero-weight
    /// edges must be walked but inert).
    fn volume(&mut self) -> f64 {
        if self.below(4) == 0 {
            0.0
        } else {
            500.0 * self.unit()
        }
    }
}

fn build_instance(
    n_t: usize,
    n_r: usize,
    coarse_diag: bool,
    seed: u64,
    n_rows: usize,
) -> RawInstance {
    let mut rng = Mix(seed);
    let task_comp: Vec<f64> = (0..n_t).map(|_| rng.weight()).collect();
    let proc_cost: Vec<f64> = (0..n_r).map(|_| rng.weight()).collect();
    let mut link = vec![0.0; n_r * n_r];
    for s in 0..n_r {
        for b in 0..s {
            let c = 50.0 * rng.unit();
            link[s * n_r + b] = c;
            link[b * n_r + s] = c;
        }
        // Coarse multilevel matrices carry intra-cluster diagonal
        // costs; exercise both the masked and mask-free kernels.
        link[s * n_r + s] = if coarse_diag { 10.0 * rng.unit() } else { 0.0 };
    }
    // Random undirected edge list (possibly empty), mirrored into CSR.
    let n_edges = rng.below(2 * n_t + 1);
    let mut per_task: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_t];
    for _ in 0..n_edges {
        let (u, v) = (rng.below(n_t), rng.below(n_t));
        if u != v {
            let c = rng.volume();
            per_task[u].push((v as u32, c));
            per_task[v].push((u as u32, c));
        }
    }
    let mut adj_offsets = vec![0u32];
    let mut adj_targets = Vec::new();
    let mut adj_volumes = Vec::new();
    for adj in &per_task {
        for &(a, c) in adj {
            adj_targets.push(a);
            adj_volumes.push(c);
        }
        adj_offsets.push(adj_targets.len() as u32);
    }
    let rows: Vec<usize> = (0..n_rows * n_t).map(|_| rng.below(n_r)).collect();
    RawInstance {
        task_comp,
        adj_offsets,
        adj_targets,
        adj_volumes,
        proc_cost,
        link,
        rows,
        n_rows,
    }
}

/// Strategy over raw instances with `n_tasks ≤ max_tasks`,
/// `n_resources ≤ max_res`, and batch widths spanning sub-lane,
/// full-group, and group-plus-tail shapes.
fn raw_instance(max_tasks: usize, max_res: usize) -> impl Strategy<Value = RawInstance> {
    (
        1..=max_tasks,
        1..=max_res,
        any::<bool>(),
        any::<u64>(),
        1..=3 * LANES + 3,
    )
        .prop_map(|(n_t, n_r, coarse_diag, seed, n_rows)| {
            build_instance(n_t, n_r, coarse_diag, seed, n_rows)
        })
}

fn assert_bitwise_agreement(raw: &RawInstance) -> Result<(), TestCaseError> {
    let plan = raw.plan();
    let n_r = plan.n_resources();
    let mut scratch = plan.new_scratch();
    let mut costs_scalar = vec![0.0; raw.n_rows];
    let mut loads_scalar = vec![0.0; raw.n_rows * n_r];
    plan.eval_batch(
        EvalBackend::Scalar,
        &raw.rows,
        &mut costs_scalar,
        Some(&mut loads_scalar),
        &mut scratch,
    );
    let mut costs_simd = vec![0.0; raw.n_rows];
    let mut loads_simd = vec![0.0; raw.n_rows * n_r];
    plan.eval_batch(
        EvalBackend::Simd,
        &raw.rows,
        &mut costs_simd,
        Some(&mut loads_simd),
        &mut scratch,
    );
    for r in 0..raw.n_rows {
        prop_assert_eq!(
            costs_scalar[r].to_bits(),
            costs_simd[r].to_bits(),
            "row {}: Eq. 2 cost bits diverge ({} vs {})",
            r,
            costs_scalar[r],
            costs_simd[r]
        );
        for s in 0..n_r {
            prop_assert_eq!(
                loads_scalar[r * n_r + s].to_bits(),
                loads_simd[r * n_r + s].to_bits(),
                "row {} resource {}: Eq. 1 load bits diverge",
                r,
                s
            );
        }
    }
    Ok(())
}

proptest! {
    /// Square-ish and rectangular instances at moderate size.
    fn simd_matches_scalar_bitwise(raw in raw_instance(64, 24)) {
        assert_bitwise_agreement(&raw)?;
    }

    /// Very few resources: almost every neighbour pair is co-located,
    /// hammering the mask / zero-diagonal paths.
    fn simd_matches_scalar_when_heavily_colocated(raw in raw_instance(48, 3)) {
        assert_bitwise_agreement(&raw)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Instances up to the issue's n = 512 bound, with a trimmed case
    /// count so debug-mode `cargo test` stays quick.
    fn simd_matches_scalar_at_scale(raw in raw_instance(512, 64)) {
        assert_bitwise_agreement(&raw)?;
    }
}
