//! Backend selection for the batch evaluator, mirroring the
//! `SamplerMode` auto-resolution idiom used by the solvers.

use crate::kernel::LANES;

/// Which Eq. 1 / Eq. 2 kernel a batch evaluation uses.
///
/// Both backends produce bit-identical results (see the crate docs for
/// the argument), so this is purely a throughput knob — safe to expose
/// on every config without a correctness caveat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// Resolve per batch: [`Simd`](EvalBackend::Simd) when the batch is
    /// at least [`LANES`] rows wide, [`Scalar`](EvalBackend::Scalar)
    /// otherwise. The default everywhere.
    #[default]
    Auto,
    /// The reference row-at-a-time kernel.
    Scalar,
    /// The lane kernel: [`LANES`] samples per pass over a transposed
    /// assignment buffer, with a scalar tail for the remainder rows.
    Simd,
}

impl EvalBackend {
    /// Batch width (rows) below which `Auto` stays scalar: one full
    /// lane group. Narrower batches would run entirely in the lane
    /// kernel's scalar tail anyway.
    pub const AUTO_MIN_ROWS: usize = LANES;

    /// Collapse `Auto` for a batch of `rows` samples.
    pub fn resolved_for(self, rows: usize) -> EvalBackend {
        match self {
            EvalBackend::Auto => {
                if rows >= Self::AUTO_MIN_ROWS {
                    EvalBackend::Simd
                } else {
                    EvalBackend::Scalar
                }
            }
            pinned => pinned,
        }
    }

    /// Parse a CLI / wire value (`auto` | `scalar` | `simd`).
    pub fn parse(name: &str) -> Option<EvalBackend> {
        match name {
            "auto" => Some(EvalBackend::Auto),
            "scalar" => Some(EvalBackend::Scalar),
            "simd" => Some(EvalBackend::Simd),
            _ => None,
        }
    }

    /// The canonical lowercase name (`parse`'s inverse).
    pub fn as_str(self) -> &'static str {
        match self {
            EvalBackend::Auto => "auto",
            EvalBackend::Scalar => "scalar",
            EvalBackend::Simd => "simd",
        }
    }
}

impl std::fmt::Display for EvalBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_on_batch_width() {
        assert_eq!(
            EvalBackend::Auto.resolved_for(LANES),
            EvalBackend::Simd,
            "a full lane group is wide enough"
        );
        assert_eq!(
            EvalBackend::Auto.resolved_for(LANES - 1),
            EvalBackend::Scalar
        );
        assert_eq!(EvalBackend::Auto.resolved_for(0), EvalBackend::Scalar);
        assert_eq!(EvalBackend::Auto.resolved_for(10_000), EvalBackend::Simd);
    }

    #[test]
    fn pinned_backends_ignore_batch_width() {
        assert_eq!(
            EvalBackend::Scalar.resolved_for(10_000),
            EvalBackend::Scalar
        );
        assert_eq!(EvalBackend::Simd.resolved_for(1), EvalBackend::Simd);
    }

    #[test]
    fn parse_round_trips_every_variant() {
        for b in [EvalBackend::Auto, EvalBackend::Scalar, EvalBackend::Simd] {
            assert_eq!(EvalBackend::parse(b.as_str()), Some(b));
            assert_eq!(format!("{b}"), b.as_str());
        }
        assert_eq!(EvalBackend::parse("avx512"), None);
        assert_eq!(EvalBackend::parse(""), None);
    }
}
