//! # match-eval
//!
//! Batch evaluation of the paper's cost model (Eq. 1 / Eq. 2) over flat
//! `N×n` sample buffers: a precomputed structure-of-arrays
//! [`InstancePlan`] plus two interchangeable kernels selected by
//! [`EvalBackend`].
//!
//! Every solver in the workspace funnels its hot loop through flat
//! row-major batches (the CE `2n²` sample matrix, the GA generation
//! buffer, the multilevel coarse solves). Evaluating those rows one at
//! a time leaves two kinds of throughput on the table:
//!
//! * the per-row accumulator is a single serial FP add chain (each
//!   `acc += c·link` waits ~4 cycles on the previous add), and
//! * the co-location test `if b != s` is a data-dependent branch on
//!   gathered indices.
//!
//! The [`Simd`](EvalBackend::Simd) kernel fixes both by evaluating
//! [`LANES`] samples per pass from a transposed (structure-of-arrays)
//! assignment buffer: eight independent accumulator chains hide the add
//! latency, and the co-location rule becomes a branch-free mask/select
//! on the gathered link costs. There are no explicit intrinsics — the
//! lanes are fixed-size arrays a vectorising compiler can pack, and the
//! portable chunked-scalar layout is the fallback on any target.
//!
//! ## Bit-exactness
//!
//! The lane kernel is **bit-identical** to the scalar path (and hence
//! to `match_core::exec_per_resource_into`), not merely close:
//!
//! * each sample's accumulation visits tasks and CSR entries in exactly
//!   the scalar order — lanes group independent *samples*, never terms
//!   of one sample, so no FP sum is reassociated;
//! * the co-location rule `b = s ⇒ skip` is implemented as adding
//!   `c·0.0 = +0.0` instead of branching. Eq. 1 loads are sums of
//!   non-negative terms starting from `W^t·w_s ≥ 0`, so the running
//!   accumulator is never `-0.0`, and IEEE-754 guarantees
//!   `x + (+0.0) == x` bit-for-bit for every such `x`. When the link
//!   matrix has an all-`+0.0` diagonal (the graph layer always builds
//!   one) the mask is dropped entirely and the gathered diagonal entry
//!   itself supplies the `+0.0`;
//! * Eq. 2's horizontal max folds resources in index order with
//!   `f64::max`, exactly like the scalar fold.
//!
//! Because batch evaluation is pure (no RNG draws), swapping backends
//! — or regrouping rows into different lane chunks under different
//! thread counts — cannot perturb any solver trajectory.

mod backend;
mod kernel;
mod plan;

pub use backend::EvalBackend;
pub use kernel::{EvalScratch, LANES};
pub use plan::InstancePlan;
