//! The precomputed structure-of-arrays evaluation plan.

/// Cap on `n_tasks · n_resources` above which the `W^t·w_s` processing
/// table is not materialised (4M entries = 32 MiB). Past the cap the
/// kernels multiply `W^t · w_s` on the fly — the exact same product
/// bits, so the cutover is invisible to results.
const PROC_TAB_MAX_ENTRIES: usize = 1 << 22;

/// Everything Eq. 1 / Eq. 2 needs, flattened once per solve into
/// contiguous arrays shared across every iteration's batches:
///
/// * `proc_tab[t·n_r + s] = W^t · w_s` — the processing term as one
///   gather instead of a multiply (dropped above a size cap);
/// * the CSR neighbour/volume arrays (`adj_offsets` / `adj_targets` /
///   `adj_volumes`);
/// * the row-major `c_{s,b}` link matrix.
///
/// Built from raw slices so both `match-core` (which sits *above*
/// `match-ce` in the dependency graph) and the solvers below it can
/// construct one without a cyclic dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePlan {
    n_tasks: usize,
    n_resources: usize,
    task_comp: Vec<f64>,
    proc_cost: Vec<f64>,
    proc_tab: Option<Vec<f64>>,
    adj_offsets: Vec<u32>,
    adj_targets: Vec<u32>,
    adj_volumes: Vec<f64>,
    link: Vec<f64>,
    /// Whether every diagonal entry of `link` is exactly `+0.0`. When
    /// true the lane kernel drops the co-location mask entirely: the
    /// gathered `c_{s,s}` itself supplies the bit-neutral `+0.0` term.
    /// Coarse multilevel matrices can carry non-zero diagonals, so this
    /// is probed at build time rather than assumed.
    diag_zero: bool,
}

impl InstancePlan {
    /// Build a plan from flattened instance parts.
    ///
    /// `adj_offsets` is the usual CSR offset array (`n_tasks + 1`
    /// entries); `link` is `n_resources²` row-major. Computation
    /// weights and processing costs must be positive and finite,
    /// volumes and link costs non-negative — the same invariants
    /// `match_core::MappingInstance` enforces, re-asserted here because
    /// the `+0.0`-masking bit-exactness argument depends on them.
    pub fn new(
        task_comp: Vec<f64>,
        adj_offsets: Vec<u32>,
        adj_targets: Vec<u32>,
        adj_volumes: Vec<f64>,
        proc_cost: Vec<f64>,
        link: Vec<f64>,
    ) -> Self {
        let n_tasks = task_comp.len();
        let n_resources = proc_cost.len();
        assert_eq!(adj_offsets.len(), n_tasks + 1, "CSR offsets length");
        assert_eq!(
            adj_offsets.first().copied().unwrap_or(0),
            0,
            "CSR offsets must start at 0"
        );
        assert_eq!(
            *adj_offsets.last().expect("offsets non-empty") as usize,
            adj_targets.len(),
            "CSR offsets must cover the target array"
        );
        assert!(
            adj_offsets.windows(2).all(|w| w[0] <= w[1]),
            "CSR offsets must be monotone"
        );
        assert_eq!(adj_targets.len(), adj_volumes.len(), "CSR arrays length");
        assert!(
            adj_targets.iter().all(|&a| (a as usize) < n_tasks),
            "CSR targets in range"
        );
        assert_eq!(link.len(), n_resources * n_resources, "link matrix shape");
        assert!(
            task_comp.iter().all(|&w| w.is_finite() && w > 0.0),
            "task computation weights must be finite and positive"
        );
        assert!(
            proc_cost.iter().all(|&w| w.is_finite() && w > 0.0),
            "resource processing costs must be finite and positive"
        );
        assert!(
            adj_volumes.iter().all(|&c| c.is_finite() && c >= 0.0),
            "interaction volumes must be finite and non-negative"
        );
        assert!(
            link.iter().all(|&c| !c.is_nan() && c >= 0.0),
            "link costs must be non-negative"
        );
        let diag_zero =
            (0..n_resources).all(|s| link[s * n_resources + s].to_bits() == 0.0f64.to_bits());
        let proc_tab = (n_tasks * n_resources <= PROC_TAB_MAX_ENTRIES
            && n_tasks > 0
            && n_resources > 0)
            .then(|| {
                let mut tab = Vec::with_capacity(n_tasks * n_resources);
                for &w in &task_comp {
                    tab.extend(proc_cost.iter().map(|&p| w * p));
                }
                tab
            });
        InstancePlan {
            n_tasks,
            n_resources,
            task_comp,
            proc_cost,
            proc_tab,
            adj_offsets,
            adj_targets,
            adj_volumes,
            link,
            diag_zero,
        }
    }

    /// Number of tasks (the row width of every batch).
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of resources (the per-row width of a loads output).
    pub fn n_resources(&self) -> usize {
        self.n_resources
    }

    /// Whether the link diagonal is all-`+0.0` (mask-free fast path).
    pub fn diag_zero(&self) -> bool {
        self.diag_zero
    }

    /// Whether the `W^t·w_s` table was materialised (false above the
    /// size cap).
    pub fn has_proc_tab(&self) -> bool {
        self.proc_tab.is_some()
    }

    /// `W^t · w_s` for task `t` on resource `s`, via the table when
    /// present. Identical bits either way: one IEEE-754 multiply.
    #[inline(always)]
    pub(crate) fn proc_term(&self, t: usize, s: usize) -> f64 {
        match &self.proc_tab {
            Some(tab) => tab[t * self.n_resources + s],
            None => self.task_comp[t] * self.proc_cost[s],
        }
    }

    /// CSR range of task `t`.
    #[inline(always)]
    pub(crate) fn csr_range(&self, t: usize) -> std::ops::Range<usize> {
        self.adj_offsets[t] as usize..self.adj_offsets[t + 1] as usize
    }

    #[inline(always)]
    pub(crate) fn csr_target(&self, k: usize) -> usize {
        self.adj_targets[k] as usize
    }

    #[inline(always)]
    pub(crate) fn csr_volume(&self, k: usize) -> f64 {
        self.adj_volumes[k]
    }

    #[inline(always)]
    pub(crate) fn link_cost(&self, s: usize, b: usize) -> f64 {
        self.link[s * self.n_resources + b]
    }

    /// The raw CSR arrays `(offsets, targets, volumes)`, for kernels
    /// that walk a task's whole adjacency as one slice pass.
    #[inline(always)]
    pub(crate) fn csr_parts(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.adj_offsets, &self.adj_targets, &self.adj_volumes)
    }

    /// The flat row-major link matrix, for kernels that gather with
    /// precomputed `s·n_r` row bases.
    #[inline(always)]
    pub(crate) fn link_flat(&self) -> &[f64] {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3_plan(link: Vec<f64>) -> InstancePlan {
        // Tasks 0-1-2 in a path; W = [1, 2, 3]; w = [1, 2, 4].
        InstancePlan::new(
            vec![1.0, 2.0, 3.0],
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![10.0, 10.0, 20.0, 20.0],
            vec![1.0, 2.0, 4.0],
            link,
        )
    }

    fn zero_diag_link() -> Vec<f64> {
        vec![0.0, 5.0, 7.0, 5.0, 0.0, 5.0, 7.0, 5.0, 0.0]
    }

    #[test]
    fn probes_the_link_diagonal() {
        assert!(path3_plan(zero_diag_link()).diag_zero());
        let mut coarse = zero_diag_link();
        coarse[4] = 2.5; // c_{1,1} — an intra-cluster coarse link cost
        assert!(!path3_plan(coarse).diag_zero());
    }

    #[test]
    fn negative_zero_diagonal_is_not_bit_zero() {
        // -0.0 gathered into an accumulator of +0.0 would flip the sign
        // bit; the probe must therefore compare bits, not values.
        let mut link = zero_diag_link();
        link[0] = -0.0;
        assert!(!path3_plan(link).diag_zero());
    }

    #[test]
    fn proc_tab_holds_exact_products() {
        let plan = path3_plan(zero_diag_link());
        assert!(plan.has_proc_tab());
        for t in 0..3 {
            for s in 0..3 {
                let want: f64 = [1.0, 2.0, 3.0][t] * [1.0, 2.0, 4.0][s];
                assert_eq!(plan.proc_term(t, s).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "CSR offsets must cover")]
    fn rejects_truncated_csr() {
        InstancePlan::new(
            vec![1.0, 2.0],
            vec![0, 1, 3],
            vec![1, 0],
            vec![1.0, 1.0],
            vec![1.0],
            vec![0.0],
        );
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_computation_weight() {
        // The +0.0-mask bit-exactness argument needs strictly positive
        // processing terms; the constructor must hold the line.
        InstancePlan::new(vec![0.0], vec![0, 0], vec![], vec![], vec![1.0], vec![0.0]);
    }
}
