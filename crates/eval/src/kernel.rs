//! The two Eq. 1 / Eq. 2 kernels: the reference row-at-a-time scalar
//! loop and the [`LANES`]-wide lane kernel over a transposed
//! (structure-of-arrays) assignment buffer.

use crate::backend::EvalBackend;
use crate::plan::InstancePlan;

/// Samples evaluated per lane-kernel pass. Eight `f64` accumulators
/// fill one AVX-512 register or two AVX2 registers, and — just as
/// importantly on any target — give the out-of-order core eight
/// independent add chains where the scalar loop has one.
pub const LANES: usize = 8;

/// Reusable buffers for batch evaluation: the transposed assignment
/// block (`n_tasks × LANES`, lane-minor so one task's eight
/// assignments are contiguous) and the per-resource load lanes
/// (`n_resources × LANES`). Grown on demand, so one scratch serves any
/// plan; per-thread ownership composes with `match-par` row chunking.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    soa: Vec<u32>,
    lane_loads: Vec<f64>,
    row_loads: Vec<f64>,
}

impl EvalScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    fn ensure(&mut self, n_tasks: usize, n_resources: usize) {
        self.soa.resize(n_tasks * LANES, 0);
        self.lane_loads.resize(n_resources * LANES, 0.0);
        self.row_loads.resize(n_resources, 0.0);
    }
}

impl InstancePlan {
    /// A scratch sized for this plan (sizing is lazy anyway; this just
    /// front-loads the allocation).
    pub fn new_scratch(&self) -> EvalScratch {
        let mut scratch = EvalScratch::new();
        scratch.ensure(self.n_tasks(), self.n_resources());
        scratch
    }

    /// The reference scalar kernel: Eq. 1 loads for one assignment row
    /// into `loads` (length `n_resources`), returning the Eq. 2 max.
    ///
    /// Bit-identical to `match_core::exec_per_resource_into` followed
    /// by the max fold: same task order, same CSR order, same skip of
    /// co-located neighbours, same `f64::max` fold in resource order.
    pub fn eval_row(&self, row: &[usize], loads: &mut [f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_tasks());
        debug_assert_eq!(loads.len(), self.n_resources());
        loads.fill(0.0);
        for (t, &s) in row.iter().enumerate() {
            let mut acc = self.proc_term(t, s);
            for k in self.csr_range(t) {
                let b = row[self.csr_target(k)];
                if b != s {
                    acc += self.csr_volume(k) * self.link_cost(s, b);
                }
            }
            loads[s] += acc;
        }
        loads.iter().copied().fold(0.0, f64::max)
    }

    /// Evaluate a flat batch of assignment rows (`costs.len()` rows of
    /// `n_tasks` entries each) with the chosen backend, writing the
    /// Eq. 2 cost per row and, when `loads` is given, the Eq. 1
    /// per-resource loads (`n_resources` per row, row-major).
    ///
    /// `Auto` resolves on the batch width. The `Simd` backend runs full
    /// [`LANES`]-row groups through the lane kernel and the remainder
    /// through the scalar kernel — both bit-identical, so the split
    /// point (and therefore any upstream thread-chunking of the batch)
    /// never shows in the results.
    pub fn eval_batch(
        &self,
        backend: EvalBackend,
        rows: &[usize],
        costs: &mut [f64],
        mut loads: Option<&mut [f64]>,
        scratch: &mut EvalScratch,
    ) {
        let n = self.n_tasks();
        let n_r = self.n_resources();
        let n_rows = costs.len();
        assert_eq!(
            rows.len(),
            n_rows * n,
            "rows buffer must be n_rows × n_tasks"
        );
        if let Some(out) = loads.as_deref() {
            assert_eq!(
                out.len(),
                n_rows * n_r,
                "loads buffer must be n_rows × n_resources"
            );
        }
        scratch.ensure(n, n_r);
        let mut done = 0;
        if backend.resolved_for(n_rows) == EvalBackend::Simd && n > 0 && n_r > 0 {
            // One up-front range check over the whole batch licenses the
            // lane kernel's unchecked gathers (see the SAFETY notes
            // there); the scalar kernel would catch the same bad input
            // row by row via its slice indexing.
            assert!(
                rows.iter().all(|&s| s < n_r),
                "assignment targets a resource >= {n_r}"
            );
            while done + LANES <= n_rows {
                let group = &rows[done * n..(done + LANES) * n];
                let group_loads = loads
                    .as_deref_mut()
                    .map(|out| &mut out[done * n_r..(done + LANES) * n_r]);
                let group_costs = &mut costs[done..done + LANES];
                if self.diag_zero() {
                    self.eval_lane_group::<true>(group, group_costs, group_loads, scratch);
                } else {
                    self.eval_lane_group::<false>(group, group_costs, group_loads, scratch);
                }
                done += LANES;
            }
        }
        for r in done..n_rows {
            let row = &rows[r * n..(r + 1) * n];
            costs[r] = match loads.as_deref_mut() {
                Some(out) => self.eval_row(row, &mut out[r * n_r..(r + 1) * n_r]),
                None => {
                    let mut row_loads = std::mem::take(&mut scratch.row_loads);
                    let c = self.eval_row(row, &mut row_loads);
                    scratch.row_loads = row_loads;
                    c
                }
            };
        }
    }

    /// One [`LANES`]-row pass. `DIAG_ZERO` selects the mask-free
    /// variant: with an all-`+0.0` link diagonal, a co-located
    /// neighbour gathers `c_{s,s} = +0.0` and the multiply-accumulate
    /// adds `c·0.0 = +0.0` — bit-neutral on the strictly-positive
    /// accumulator (see the crate docs). With a non-zero diagonal
    /// (coarse multilevel matrices) the select injects the `+0.0`
    /// explicitly; either way there is no branch in the hot loop.
    fn eval_lane_group<const DIAG_ZERO: bool>(
        &self,
        rows: &[usize],
        costs: &mut [f64],
        loads_out: Option<&mut [f64]>,
        scratch: &mut EvalScratch,
    ) {
        let n = self.n_tasks();
        let n_r = self.n_resources();
        debug_assert_eq!(rows.len(), LANES * n);
        debug_assert_eq!(costs.len(), LANES);
        let soa = &mut scratch.soa[..n * LANES];
        // Transpose the group: soa[t·LANES + l] = rows[l][t], so one
        // task's eight assignments sit in one cache line.
        for (l, row) in rows.chunks_exact(n).enumerate() {
            for (t, &s) in row.iter().enumerate() {
                soa[t * LANES + l] = s as u32;
            }
        }
        let lane_loads = &mut scratch.lane_loads[..n_r * LANES];
        lane_loads.fill(0.0);
        // The accumulate loop is the whole backend; dispatch to the
        // AVX2 gather kernel when the host has it (and the link matrix
        // is addressable by the gather's signed 32-bit indices), else
        // the portable chunked-scalar lane loop. Both run the exact
        // same per-lane IEEE multiply/add sequence, so the dispatch is
        // invisible in the results.
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY (both arms): the vector unit was just detected;
            // the kernels' in-bounds argument is the same up-front
            // batch and CSR validation the portable path relies on
            // (see below).
            if n_r * n_r <= i32::MAX as usize
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                unsafe { x86::accumulate_lanes_avx512::<DIAG_ZERO>(self, soa, lane_loads) };
            } else if n_r * n_r <= i32::MAX as usize && std::arch::is_x86_feature_detected!("avx2")
            {
                unsafe { x86::accumulate_lanes_avx2::<DIAG_ZERO>(self, soa, lane_loads) };
            } else {
                self.accumulate_lanes_portable::<DIAG_ZERO>(soa, lane_loads);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.accumulate_lanes_portable::<DIAG_ZERO>(soa, lane_loads);
        for (l, cost) in costs.iter_mut().enumerate() {
            let mut m = 0.0f64;
            for sr in 0..n_r {
                m = f64::max(m, lane_loads[sr * LANES + l]);
            }
            *cost = m;
        }
        if let Some(out) = loads_out {
            debug_assert_eq!(out.len(), LANES * n_r);
            for (l, row) in out.chunks_exact_mut(n_r).enumerate() {
                for (sr, slot) in row.iter_mut().enumerate() {
                    *slot = lane_loads[sr * LANES + l];
                }
            }
        }
    }

    /// The portable chunked-scalar lane accumulator: Eq. 1 terms for
    /// one transposed [`LANES`]-row group, summed into the per-resource
    /// load lanes.
    fn accumulate_lanes_portable<const DIAG_ZERO: bool>(
        &self,
        soa: &[u32],
        lane_loads: &mut [f64],
    ) {
        let n = self.n_tasks();
        let n_r = self.n_resources();
        let (offsets, targets, volumes) = self.csr_parts();
        let link = self.link_flat();
        // The edge loop is the whole backend: per (task, edge) it issues
        // eight independent gather + multiply-accumulate chains. Checked
        // indexing there costs a compare-and-branch per gather — enough
        // to halve throughput — so the gathers are unchecked, licensed
        // by `eval_batch`'s single up-front validation of the batch
        // (every assignment `< n_r`) and the plan constructor's CSR
        // validation (every target `< n_tasks`).
        for t in 0..n {
            let s: [u32; LANES] = soa[t * LANES..(t + 1) * LANES].try_into().expect("LANES");
            let mut acc = [0.0f64; LANES];
            // `s` is fixed for the whole adjacency walk, so each lane's
            // link-matrix row base is resolved once per task.
            let mut base = [0usize; LANES];
            for l in 0..LANES {
                acc[l] = self.proc_term(t, s[l] as usize);
                base[l] = s[l] as usize * n_r;
            }
            let range = offsets[t] as usize..offsets[t + 1] as usize;
            for (&a, &c) in targets[range.clone()].iter().zip(&volumes[range]) {
                let off = a as usize * LANES;
                for l in 0..LANES {
                    // SAFETY: `a < n_tasks` (checked by the plan
                    // constructor), so `off + l < n_tasks·LANES`, the
                    // exact length of `soa`.
                    let nbl = unsafe { *soa.get_unchecked(off + l) };
                    // SAFETY: `s[l] < n_r` and `nbl < n_r` (both are
                    // batch assignments validated by `eval_batch`), so
                    // `base[l] + nbl ≤ (n_r-1)·n_r + (n_r-1) < n_r²`,
                    // the exact length of `link`.
                    let gathered = unsafe { *link.get_unchecked(base[l] + nbl as usize) };
                    let term = if DIAG_ZERO || nbl != s[l] {
                        gathered
                    } else {
                        0.0
                    };
                    acc[l] += c * term;
                }
            }
            for l in 0..LANES {
                lane_loads[s[l] as usize * LANES + l] += acc[l];
            }
        }
    }
}

/// The x86-64 gather kernels: the same per-lane accumulate sequence as
/// the portable loop, four lanes per `ymm` register (AVX2) or eight per
/// `zmm` (AVX-512).
///
/// Bit-exactness relies on `vmulpd`/`vaddpd` being per-lane IEEE-754
/// double multiply/add — the identical operations the scalar kernel
/// issues, in the identical (CSR) order, one serial add chain per lane.
/// Vectorising across *lanes* (independent samples) rather than within
/// one sample's sum is what keeps the backend bit-exact: nothing is
/// ever reassociated. The non-`DIAG_ZERO` variants mask co-located
/// pairs by zeroing the gathered link cost to `+0.0` before the
/// multiply — `acc + c·(+0.0)` is the same bits as the scalar skip on a
/// non-negative accumulator.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{InstancePlan, LANES};
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_add_pd, _mm256_andnot_pd, _mm256_castsi256_pd,
        _mm256_castsi256_si128, _mm256_cmpeq_epi32, _mm256_cmpneq_epi32_mask,
        _mm256_cvtepi32_epi64, _mm256_extracti128_si256, _mm256_i32gather_pd, _mm256_loadu_pd,
        _mm256_loadu_si256, _mm256_mul_pd, _mm256_mullo_epi32, _mm256_set1_epi32, _mm256_set1_pd,
        _mm256_storeu_pd, _mm512_add_pd, _mm512_i32gather_pd, _mm512_loadu_pd, _mm512_maskz_mov_pd,
        _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd,
    };

    /// # Safety
    ///
    /// Caller must have verified AVX-512F + AVX-512VL support,
    /// `soa.len() == n_tasks · LANES` with every entry `<
    /// n_resources`, `lane_loads.len() == n_resources · LANES`, and
    /// `n_resources² ≤ i32::MAX` (gather indices are signed 32-bit).
    #[target_feature(enable = "avx512f,avx512vl")]
    pub(super) unsafe fn accumulate_lanes_avx512<const DIAG_ZERO: bool>(
        plan: &InstancePlan,
        soa: &[u32],
        lane_loads: &mut [f64],
    ) {
        debug_assert_eq!(LANES, 8, "kernel is written for one 8-lane register");
        let n = plan.n_tasks();
        let n_r = plan.n_resources();
        let (offsets, targets, volumes) = plan.csr_parts();
        let link = plan.link_flat().as_ptr();
        let nr_vec = _mm256_set1_epi32(n_r as i32);
        let mut accbuf = [0.0f64; LANES];
        for t in 0..n {
            // SAFETY: `t·LANES + 8 ≤ n·LANES`, the length of `soa`;
            // `loadu` has no alignment requirement.
            let s_vec =
                unsafe { _mm256_loadu_si256(soa.as_ptr().add(t * LANES) as *const __m256i) };
            // Row bases `s[l]·n_r` fit i32 because `n_r² ≤ i32::MAX`.
            let row_base = _mm256_mullo_epi32(s_vec, nr_vec);
            for (l, slot) in accbuf.iter_mut().enumerate() {
                *slot = plan.proc_term(t, soa[t * LANES + l] as usize);
            }
            let mut acc = unsafe { _mm512_loadu_pd(accbuf.as_ptr()) };
            let range = offsets[t] as usize..offsets[t + 1] as usize;
            for (&a, &c) in targets[range.clone()].iter().zip(&volumes[range]) {
                // SAFETY: `a < n_tasks` (plan constructor), so the
                // eight neighbour assignments are in bounds.
                let nb = unsafe {
                    _mm256_loadu_si256(soa.as_ptr().add(a as usize * LANES) as *const __m256i)
                };
                let idx = _mm256_add_epi32(row_base, nb);
                // SAFETY: every index is `s[l]·n_r + nb[l] < n_r²`, the
                // length of `link` (assignments validated up front by
                // `eval_batch`), and fits the gather's signed i32.
                let mut g = unsafe { _mm512_i32gather_pd::<8>(idx, link) };
                if !DIAG_ZERO {
                    // Keep only the lanes whose neighbour sits on a
                    // different resource; co-located lanes become +0.0.
                    g = _mm512_maskz_mov_pd(_mm256_cmpneq_epi32_mask(nb, s_vec), g);
                }
                acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_set1_pd(c), g));
            }
            unsafe { _mm512_storeu_pd(accbuf.as_mut_ptr(), acc) };
            for (l, &v) in accbuf.iter().enumerate() {
                lane_loads[soa[t * LANES + l] as usize * LANES + l] += v;
            }
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support, `soa.len() == n_tasks ·
    /// LANES` with every entry `< n_resources`, `lane_loads.len() ==
    /// n_resources · LANES`, and `n_resources² ≤ i32::MAX` (gather
    /// indices are signed 32-bit).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_lanes_avx2<const DIAG_ZERO: bool>(
        plan: &InstancePlan,
        soa: &[u32],
        lane_loads: &mut [f64],
    ) {
        debug_assert_eq!(LANES, 8, "kernel is written for two 4-lane registers");
        let n = plan.n_tasks();
        let n_r = plan.n_resources();
        let (offsets, targets, volumes) = plan.csr_parts();
        let link = plan.link_flat().as_ptr();
        let nr_vec = _mm256_set1_epi32(n_r as i32);
        let mut accbuf = [0.0f64; LANES];
        for t in 0..n {
            // SAFETY: `t·LANES + 8 ≤ n·LANES`, the length of `soa`;
            // `loadu` has no alignment requirement.
            let s_vec =
                unsafe { _mm256_loadu_si256(soa.as_ptr().add(t * LANES) as *const __m256i) };
            // Row bases `s[l]·n_r` fit i32 because `n_r² ≤ i32::MAX`.
            let row_base = _mm256_mullo_epi32(s_vec, nr_vec);
            for (l, slot) in accbuf.iter_mut().enumerate() {
                *slot = plan.proc_term(t, soa[t * LANES + l] as usize);
            }
            let mut acc0 = unsafe { _mm256_loadu_pd(accbuf.as_ptr()) };
            let mut acc1 = unsafe { _mm256_loadu_pd(accbuf.as_ptr().add(4)) };
            let range = offsets[t] as usize..offsets[t + 1] as usize;
            for (&a, &c) in targets[range.clone()].iter().zip(&volumes[range]) {
                // SAFETY: `a < n_tasks` (plan constructor), so the
                // eight neighbour assignments are in bounds.
                let nb = unsafe {
                    _mm256_loadu_si256(soa.as_ptr().add(a as usize * LANES) as *const __m256i)
                };
                let idx = _mm256_add_epi32(row_base, nb);
                // SAFETY: every index is `s[l]·n_r + nb[l] < n_r²`, the
                // length of `link` (assignments validated up front by
                // `eval_batch`), and fits the gather's signed i32.
                let mut g0 = unsafe { _mm256_i32gather_pd::<8>(link, _mm256_castsi256_si128(idx)) };
                let mut g1 =
                    unsafe { _mm256_i32gather_pd::<8>(link, _mm256_extracti128_si256::<1>(idx)) };
                if !DIAG_ZERO {
                    // Co-located lanes: force the gathered cost to +0.0
                    // (cmpeq gives all-ones 32-bit masks; sign-extend
                    // to 64-bit, then clear those lanes).
                    let eq = _mm256_cmpeq_epi32(nb, s_vec);
                    let m0 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(eq));
                    let m1 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(eq));
                    g0 = _mm256_andnot_pd(_mm256_castsi256_pd(m0), g0);
                    g1 = _mm256_andnot_pd(_mm256_castsi256_pd(m1), g1);
                }
                let cv = _mm256_set1_pd(c);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(cv, g0));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(cv, g1));
            }
            unsafe {
                _mm256_storeu_pd(accbuf.as_mut_ptr(), acc0);
                _mm256_storeu_pd(accbuf.as_mut_ptr().add(4), acc1);
            }
            for (l, &v) in accbuf.iter().enumerate() {
                lane_loads[soa[t * LANES + l] as usize * LANES + l] += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic xorshift so the tests need no external RNG
    /// plumbing.
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A random connected-ish instance: ring + random chords.
    fn random_plan(n_tasks: usize, n_resources: usize, seed: u64, diag: f64) -> InstancePlan {
        let mut rng = Xs(seed | 1);
        let task_comp: Vec<f64> = (0..n_tasks).map(|_| 1.0 + 9.0 * rng.unit()).collect();
        let proc_cost: Vec<f64> = (0..n_resources).map(|_| 0.5 + 2.0 * rng.unit()).collect();
        let mut link = vec![0.0; n_resources * n_resources];
        for s in 0..n_resources {
            for b in 0..s {
                let c = 10.0 * rng.unit();
                link[s * n_resources + b] = c;
                link[b * n_resources + s] = c;
            }
            link[s * n_resources + s] = diag;
        }
        // Undirected edges, mirrored into CSR by hand (zero volumes
        // included: they must be inert but still walked).
        let mut edges = Vec::new();
        for t in 1..n_tasks {
            let vol = if t % 5 == 0 { 0.0 } else { 50.0 * rng.unit() };
            edges.push((t - 1, t, vol));
        }
        for _ in 0..n_tasks {
            let (u, v) = (rng.below(n_tasks), rng.below(n_tasks));
            if u != v {
                edges.push((u.min(v), u.max(v), 50.0 * rng.unit()));
            }
        }
        let mut per_task: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_tasks];
        for &(u, v, c) in &edges {
            per_task[u].push((v as u32, c));
            per_task[v].push((u as u32, c));
        }
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        let mut volumes = Vec::new();
        for adj in &per_task {
            for &(a, c) in adj {
                targets.push(a);
                volumes.push(c);
            }
            offsets.push(targets.len() as u32);
        }
        InstancePlan::new(task_comp, offsets, targets, volumes, proc_cost, link)
    }

    fn random_rows(plan: &InstancePlan, n_rows: usize, seed: u64) -> Vec<usize> {
        let mut rng = Xs(seed | 1);
        (0..n_rows * plan.n_tasks())
            .map(|_| rng.below(plan.n_resources()))
            .collect()
    }

    /// Simd and Scalar must agree bit-for-bit on costs and loads.
    fn assert_backends_bit_equal(plan: &InstancePlan, n_rows: usize, seed: u64) {
        let rows = random_rows(plan, n_rows, seed);
        let n_r = plan.n_resources();
        let mut scratch = plan.new_scratch();
        let mut costs_scalar = vec![0.0; n_rows];
        let mut loads_scalar = vec![0.0; n_rows * n_r];
        plan.eval_batch(
            EvalBackend::Scalar,
            &rows,
            &mut costs_scalar,
            Some(&mut loads_scalar),
            &mut scratch,
        );
        let mut costs_simd = vec![0.0; n_rows];
        let mut loads_simd = vec![0.0; n_rows * n_r];
        plan.eval_batch(
            EvalBackend::Simd,
            &rows,
            &mut costs_simd,
            Some(&mut loads_simd),
            &mut scratch,
        );
        for r in 0..n_rows {
            assert_eq!(
                costs_scalar[r].to_bits(),
                costs_simd[r].to_bits(),
                "row {r}: cost bits diverge"
            );
            for s in 0..n_r {
                assert_eq!(
                    loads_scalar[r * n_r + s].to_bits(),
                    loads_simd[r * n_r + s].to_bits(),
                    "row {r} resource {s}: load bits diverge"
                );
            }
        }
    }

    #[test]
    fn hand_computed_tiny_instance() {
        // The 3-task path instance from match-core's cost tests: the
        // lane kernel must reproduce its pinned loads exactly.
        let plan = InstancePlan::new(
            vec![1.0, 2.0, 3.0],
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![10.0, 10.0, 20.0, 20.0],
            vec![1.0, 2.0, 4.0],
            vec![0.0, 5.0, 7.0, 5.0, 0.0, 5.0, 7.0, 5.0, 0.0],
        );
        let mut loads = vec![0.0; 3];
        assert_eq!(plan.eval_row(&[0, 1, 2], &mut loads), 154.0);
        assert_eq!(loads, vec![51.0, 154.0, 112.0]);
        assert_eq!(plan.eval_row(&[2, 0, 1], &mut loads), 172.0);
        assert_eq!(loads, vec![172.0, 106.0, 74.0]);
        assert_eq!(plan.eval_row(&[0, 0, 0], &mut loads), 6.0);
        assert_eq!(loads, vec![6.0, 0.0, 0.0]);

        // Batch the three mappings through the lane kernel (padded to a
        // full group with copies).
        let mappings = [[0, 1, 2], [2, 0, 1], [0, 0, 0]];
        let rows: Vec<usize> = (0..LANES).flat_map(|r| mappings[r % 3]).collect();
        let mut costs = vec![0.0; LANES];
        let mut scratch = plan.new_scratch();
        plan.eval_batch(EvalBackend::Simd, &rows, &mut costs, None, &mut scratch);
        let want = [154.0, 172.0, 6.0];
        for (r, &c) in costs.iter().enumerate() {
            assert_eq!(c, want[r % 3], "row {r}");
        }
    }

    #[test]
    fn backends_bit_equal_square() {
        for (n, seed) in [(8, 1u64), (33, 2), (64, 3)] {
            let plan = random_plan(n, n, seed, 0.0);
            assert!(plan.diag_zero());
            assert_backends_bit_equal(&plan, 3 * LANES + 5, seed ^ 0xabc);
        }
    }

    #[test]
    fn backends_bit_equal_rectangular() {
        // Few resources force heavy co-location: the mask path is hot.
        for (n_t, n_r, seed) in [(40, 3, 4u64), (17, 5, 5), (64, 16, 6)] {
            let plan = random_plan(n_t, n_r, seed, 0.0);
            assert_backends_bit_equal(&plan, 2 * LANES + 3, seed ^ 0xdef);
        }
    }

    #[test]
    fn backends_bit_equal_nonzero_diagonal() {
        // Coarse multilevel link matrices carry intra-cluster diagonal
        // costs: the masked select, not the gathered diagonal, must
        // supply the co-location zero.
        let plan = random_plan(24, 6, 7, 3.5);
        assert!(!plan.diag_zero());
        assert_backends_bit_equal(&plan, 4 * LANES, 0x77);
    }

    #[test]
    fn narrow_batches_and_tails_use_the_scalar_kernel() {
        let plan = random_plan(12, 12, 9, 0.0);
        // Auto on a narrow batch resolves scalar; results must still be
        // bit-equal to the pinned backends.
        let rows = random_rows(&plan, 3, 0x99);
        let mut scratch = plan.new_scratch();
        let mut auto = vec![0.0; 3];
        plan.eval_batch(EvalBackend::Auto, &rows, &mut auto, None, &mut scratch);
        let mut pinned = vec![0.0; 3];
        plan.eval_batch(EvalBackend::Simd, &rows, &mut pinned, None, &mut scratch);
        for r in 0..3 {
            assert_eq!(auto[r].to_bits(), pinned[r].to_bits());
        }
    }

    #[test]
    fn loads_output_is_optional_and_consistent() {
        let plan = random_plan(20, 20, 10, 0.0);
        let rows = random_rows(&plan, LANES + 2, 0x31);
        let mut scratch = plan.new_scratch();
        let mut with = vec![0.0; LANES + 2];
        let mut loads = vec![0.0; (LANES + 2) * 20];
        plan.eval_batch(
            EvalBackend::Simd,
            &rows,
            &mut with,
            Some(&mut loads),
            &mut scratch,
        );
        let mut without = vec![0.0; LANES + 2];
        plan.eval_batch(EvalBackend::Simd, &rows, &mut without, None, &mut scratch);
        assert_eq!(with, without);
        // Each row's loads must max out to its cost.
        for (r, &c) in with.iter().enumerate() {
            let m = loads[r * 20..(r + 1) * 20]
                .iter()
                .copied()
                .fold(0.0, f64::max);
            assert_eq!(m.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let plan = random_plan(5, 5, 11, 0.0);
        let mut scratch = plan.new_scratch();
        plan.eval_batch(EvalBackend::Auto, &[], &mut [], None, &mut scratch);
    }
}
