//! The common interface of every mapping heuristic in the workspace.
//!
//! The paper's evaluation (§5) runs several heuristics under identical
//! inputs and reports, per run, the mapped application execution time
//! (ET, Eq. 2) and the mapping time (MT, algorithm wall-clock). This
//! trait captures exactly that contract so the benchmark harness treats
//! MaTCH, FastMap-GA and every baseline uniformly.

use crate::control::StopToken;
use crate::mapping::Mapping;
use crate::problem::MappingInstance;
use match_telemetry::{Event, Recorder};
use rand::rngs::StdRng;
use std::time::Duration;

/// What one heuristic run produces.
#[derive(Debug, Clone)]
pub struct MapperOutcome {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its application execution time (ET, Eq. 2) in cost units.
    pub cost: f64,
    /// Objective evaluations performed — the machine-independent
    /// counterpart of MT.
    pub evaluations: u64,
    /// Algorithm iterations (CE iterations, GA generations, …).
    pub iterations: usize,
    /// Wall-clock mapping time (MT).
    pub elapsed: Duration,
}

/// A mapping heuristic.
pub trait Mapper {
    /// Short name used in experiment tables (e.g. `"MaTCH"`,
    /// `"FastMap-GA"`).
    fn name(&self) -> &str;

    /// Solve one instance with the given RNG. Implementations must be
    /// deterministic given the RNG state.
    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome;

    /// [`Mapper::map`] with live telemetry. The default implementation
    /// ignores the recorder (a heuristic without instrumentation still
    /// satisfies the contract); instrumented solvers override it and
    /// must emit at least `run_start`, one `iter` event per iteration,
    /// and `run_end`. Tracing must not change the optimisation
    /// trajectory: `map` and `map_traced` see identical RNG streams.
    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        let _ = recorder;
        self.map(inst, rng)
    }

    /// [`Mapper::map_traced`] with cooperative cancellation: the solver
    /// polls `stop` at iteration boundaries and, once it fires, returns
    /// early with the best mapping found so far (still a valid
    /// assignment — only the search is truncated).
    ///
    /// The default implementation ignores the token, which is the right
    /// behaviour for constructive heuristics that finish in one pass
    /// (greedy, round-robin, recursive bisection): they cannot be
    /// meaningfully interrupted. Iterative solvers override this.
    /// Polling must not consume randomness: an uncancelled controlled
    /// run sees the same RNG stream as `map_traced`.
    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        let _ = stop;
        self.map_traced(inst, rng, recorder)
    }
}

/// Emit the standard `run_start` event for a solver on an instance.
pub fn record_run_start(recorder: &mut dyn Recorder, solver: &str, inst: &MappingInstance) {
    if recorder.enabled() {
        recorder.record(Event::RunStart {
            solver: solver.to_string().into(),
            tasks: inst.n_tasks() as u64,
            resources: inst.n_resources() as u64,
        });
    }
}

/// Emit the standard `run_end` event for a finished outcome.
pub fn record_run_end(recorder: &mut dyn Recorder, outcome: &MapperOutcome) {
    if recorder.enabled() {
        recorder.record(Event::RunEnd {
            best: outcome.cost,
            iterations: outcome.iterations as u64,
            evaluations: outcome.evaluations,
            wall_ns: outcome.elapsed.as_nanos() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::exec_time;
    use match_rngutil::perm::random_permutation;
    use rand::SeedableRng;

    /// A trivial Mapper: one random permutation. Used to smoke-test the
    /// trait contract that harness code relies on.
    struct RandomOnce;

    impl Mapper for RandomOnce {
        fn name(&self) -> &str {
            "random-once"
        }

        fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
            let start = std::time::Instant::now();
            let assign = random_permutation(inst.n_tasks(), rng);
            let cost = exec_time(inst, &assign);
            MapperOutcome {
                mapping: Mapping::new(assign),
                cost,
                evaluations: 1,
                iterations: 1,
                elapsed: start.elapsed(),
            }
        }
    }

    #[test]
    fn trait_contract_roundtrip() {
        use match_graph::gen::InstanceGenerator;
        let mut rng = StdRng::seed_from_u64(5);
        let pair = InstanceGenerator::paper_family(8).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        let m = RandomOnce;
        assert_eq!(m.name(), "random-once");
        let out = m.map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
        assert_eq!(out.evaluations, 1);
    }

    #[test]
    fn determinism_under_equal_seeds() {
        use match_graph::gen::InstanceGenerator;
        let pair = InstanceGenerator::paper_family(8).generate(&mut StdRng::seed_from_u64(5));
        let inst = MappingInstance::from_pair(&pair);
        let a = RandomOnce.map(&inst, &mut StdRng::seed_from_u64(9));
        let b = RandomOnce.map(&inst, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }
}
