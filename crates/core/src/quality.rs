//! Mapping-quality diagnostics: decomposition of Eq. 1, load-balance
//! metrics, and instance lower bounds.
//!
//! The paper reports only raw ET values; these diagnostics let the
//! reproduction's reports state *how good* a mapping is in absolute
//! terms (optimality gap against a provable lower bound) and *why* it
//! is good (compute/communication split, balance).

use crate::cost::exec_per_resource;
use crate::problem::MappingInstance;

/// Breakdown of a mapping's cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingQuality {
    /// Eq. 2 makespan.
    pub makespan: f64,
    /// Total processing time summed over resources.
    pub total_compute: f64,
    /// Total communication time summed over resources.
    pub total_comm: f64,
    /// Mean per-resource load.
    pub mean_load: f64,
    /// Load imbalance: `makespan / mean_load` (1.0 = perfectly level).
    pub imbalance: f64,
    /// Fraction of the busiest resource's time spent communicating.
    pub comm_fraction_bottleneck: f64,
}

/// Analyse `assign` on `inst`.
pub fn analyze(inst: &MappingInstance, assign: &[usize]) -> MappingQuality {
    let loads = exec_per_resource(inst, assign);
    let makespan = loads.iter().copied().fold(0.0, f64::max);
    let n_res = inst.n_resources().max(1);

    // Recompute the split per resource (compute vs comm).
    let mut compute = vec![0.0f64; inst.n_resources()];
    for (t, &s) in assign.iter().enumerate() {
        compute[s] += inst.computation(t) * inst.processing_cost(s);
    }
    let total_compute: f64 = compute.iter().sum();
    let total_load: f64 = loads.iter().sum();
    let total_comm = (total_load - total_compute).max(0.0);

    let bottleneck = loads
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(s, _)| s);
    let comm_fraction_bottleneck = match bottleneck {
        Some(s) if loads[s] > 0.0 => (loads[s] - compute[s]).max(0.0) / loads[s],
        _ => 0.0,
    };
    let mean_load = total_load / n_res as f64;
    MappingQuality {
        makespan,
        total_compute,
        total_comm,
        mean_load,
        imbalance: if mean_load > 0.0 {
            makespan / mean_load
        } else {
            1.0
        },
        comm_fraction_bottleneck,
    }
}

/// A provable lower bound on Eq. 2 over *all* mappings (bijective or
/// not): the best over
///
/// * **work bound** — even with communication free and work perfectly
///   divisible, `Σ_t W^t / Σ_s (1/w_s)` time is unavoidable (each
///   resource `s` processes at speed `1/w_s`);
/// * **task bound** — some task must run somewhere:
///   `max_t W^t · min_s w_s`.
pub fn lower_bound(inst: &MappingInstance) -> f64 {
    let n_res = inst.n_resources();
    let n_tasks = inst.n_tasks();
    if n_res == 0 || n_tasks == 0 {
        return 0.0;
    }
    let total_work: f64 = (0..n_tasks).map(|t| inst.computation(t)).sum();
    let total_speed: f64 = (0..n_res).map(|s| 1.0 / inst.processing_cost(s)).sum();
    let work_bound = total_work / total_speed;

    let min_cost = (0..n_res)
        .map(|s| inst.processing_cost(s))
        .fold(f64::INFINITY, f64::min);
    let task_bound = (0..n_tasks)
        .map(|t| inst.computation(t))
        .fold(0.0, f64::max)
        * min_cost;

    work_bound.max(task_bound)
}

/// A tighter lower bound for the paper's regime (`|V_t| = |V_r|`,
/// bijective mappings): with exactly one task per resource, every task
/// pays its own computation plus *all* of its communication at the
/// platform's cheapest per-unit link cost — so the bottleneck task's
/// cheapest possible placement bounds the makespan.
pub fn bijective_lower_bound(inst: &MappingInstance) -> f64 {
    if !inst.is_square() || inst.n_tasks() == 0 {
        return lower_bound(inst);
    }
    let n = inst.n_tasks();
    let min_proc = (0..n)
        .map(|s| inst.processing_cost(s))
        .fold(f64::INFINITY, f64::min);
    // Cheapest nonzero link cost on the platform.
    let mut min_link = f64::INFINITY;
    for s in 0..n {
        for b in 0..n {
            if s != b {
                min_link = min_link.min(inst.link_cost(s, b));
            }
        }
    }
    if !min_link.is_finite() {
        min_link = 0.0;
    }
    let per_task = (0..n).map(|t| {
        let volume: f64 = inst.interactions(t).map(|(_, c)| c).sum();
        inst.computation(t) * min_proc + volume * min_link
    });
    per_task.fold(0.0, f64::max).max(lower_bound(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::exec_time;
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::perm::random_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn analysis_consistent_with_cost_model() {
        let inst = instance(10, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let assign = random_permutation(10, &mut rng);
            let q = analyze(&inst, &assign);
            assert_eq!(q.makespan, exec_time(&inst, &assign));
            assert!(q.imbalance >= 1.0 - 1e-12);
            assert!((0.0..=1.0).contains(&q.comm_fraction_bottleneck));
            assert!(q.total_compute > 0.0);
            let total = q.total_compute + q.total_comm;
            assert!((q.mean_load * 10.0 - total).abs() < 1e-6 * total);
        }
    }

    #[test]
    fn colocated_mapping_has_zero_comm() {
        let inst = instance(8, 3);
        let q = analyze(&inst, &[0; 8]);
        assert_eq!(q.total_comm, 0.0);
        assert_eq!(q.comm_fraction_bottleneck, 0.0);
        // All load on one of 8 resources → imbalance = 8.
        assert!((q.imbalance - 8.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_hold_for_many_mappings() {
        let inst = instance(12, 5);
        let lb = lower_bound(&inst);
        let blb = bijective_lower_bound(&inst);
        assert!(lb > 0.0);
        assert!(blb >= lb);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let assign = random_permutation(12, &mut rng);
            let et = exec_time(&inst, &assign);
            assert!(et >= blb - 1e-9, "ET {et} below bijective bound {blb}");
        }
    }

    #[test]
    fn work_bound_matches_hand_computation() {
        use match_graph::graph::Graph;
        use match_graph::{ResourceGraph, TaskGraph};
        // 2 tasks (W = 4, 6) on 2 resources (w = 1, 2), no edges.
        let tig = TaskGraph::new(Graph::from_node_weights(vec![4.0, 6.0]).unwrap()).unwrap();
        let mut rg = Graph::from_node_weights(vec![1.0, 2.0]).unwrap();
        rg.add_edge(0, 1, 10.0).unwrap();
        let res = ResourceGraph::new(rg).unwrap();
        let inst = MappingInstance::new(&tig, &res);
        // work bound = 10 / (1 + 0.5) = 6.667; task bound = 6·1 = 6.
        assert!((lower_bound(&inst) - 10.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_bounds_are_zero() {
        use match_graph::graph::Graph;
        use match_graph::{ResourceGraph, TaskGraph};
        let tig = TaskGraph::new(Graph::new()).unwrap();
        let res = ResourceGraph::new(Graph::new()).unwrap();
        let inst = MappingInstance::new(&tig, &res);
        assert_eq!(lower_bound(&inst), 0.0);
        assert_eq!(bijective_lower_bound(&inst), 0.0);
    }

    #[test]
    fn matcher_result_respects_bound_and_reports_gap() {
        let inst = instance(10, 7);
        let out = crate::Matcher::default().run(&inst, &mut StdRng::seed_from_u64(8));
        let blb = bijective_lower_bound(&inst);
        assert!(out.cost >= blb - 1e-9);
        // The gap should be a modest factor, not orders of magnitude.
        assert!(out.cost / blb < 50.0, "gap {}", out.cost / blb);
    }
}
