//! The mapping problem instance: dense cost tables extracted from a
//! TIG/platform pair.
//!
//! The cost model (Eq. 1) is evaluated tens of thousands of times per CE
//! iteration, so the graph structures are flattened once into cache-
//! friendly arrays: task computation weights, a CSR adjacency of
//! interaction volumes, resource processing costs and the full link-cost
//! matrix.

use match_graph::{InstancePair, ResourceGraph, TaskGraph};

/// A flattened mapping-problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingInstance {
    /// `W^t` per task.
    task_comp: Vec<f64>,
    /// CSR offsets into `adj_targets` / `adj_volumes`, length `n_tasks + 1`.
    adj_offsets: Vec<u32>,
    /// Neighbour task ids, grouped per task.
    adj_targets: Vec<u32>,
    /// `C^{t,a}` per adjacency entry.
    adj_volumes: Vec<f64>,
    /// `w_s` per resource.
    proc_cost: Vec<f64>,
    /// `c_{s,b}` row-major, `n_resources²` entries.
    link_cost: Vec<f64>,
}

impl MappingInstance {
    /// Flatten a TIG/platform pair.
    pub fn new(tig: &TaskGraph, resources: &ResourceGraph) -> Self {
        let n = tig.len();
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj_targets = Vec::new();
        let mut adj_volumes = Vec::new();
        adj_offsets.push(0u32);
        for t in 0..n {
            for (a, c) in tig.interactions(t) {
                adj_targets.push(a as u32);
                adj_volumes.push(c);
            }
            adj_offsets.push(adj_targets.len() as u32);
        }
        MappingInstance {
            task_comp: (0..n).map(|t| tig.computation(t)).collect(),
            adj_offsets,
            adj_targets,
            adj_volumes,
            proc_cost: (0..resources.len())
                .map(|s| resources.processing_cost(s))
                .collect(),
            link_cost: resources.link_cost_matrix().to_vec(),
        }
    }

    /// Flatten an [`InstancePair`].
    pub fn from_pair(pair: &InstancePair) -> Self {
        MappingInstance::new(&pair.tig, &pair.resources)
    }

    /// Assemble an instance directly from flattened parts.
    ///
    /// The multilevel driver builds coarse levels with this constructor:
    /// a coarse platform's link costs are derived from the parent
    /// level's already-routed matrix, so going back through
    /// [`ResourceGraph`](match_graph::ResourceGraph) (which re-runs the
    /// all-pairs shortest-path closure) would be both wasted work and
    /// wrong — the coarse matrix is not a metric closure of any graph.
    ///
    /// `edges` are canonical undirected interactions `(u, v, volume)`
    /// with `u != v`; parallel entries must already be collapsed.
    /// Panics on malformed input (out-of-range endpoints, non-positive
    /// weights where the graph layer would reject them, or a link
    /// matrix that is not `n_resources²` row-major).
    pub fn from_parts(
        task_comp: Vec<f64>,
        edges: &[(u32, u32, f64)],
        proc_cost: Vec<f64>,
        link_cost: Vec<f64>,
    ) -> Self {
        let n = task_comp.len();
        let n_r = proc_cost.len();
        assert!(n > 0, "need at least one task");
        assert!(n_r > 0, "need at least one resource");
        assert_eq!(
            link_cost.len(),
            n_r * n_r,
            "link matrix must be n_resources x n_resources row-major"
        );
        assert!(
            task_comp.iter().all(|&w| w.is_finite() && w > 0.0),
            "task computation weights must be finite and positive"
        );
        assert!(
            proc_cost.iter().all(|&w| w.is_finite() && w > 0.0),
            "resource processing costs must be finite and positive"
        );
        assert!(
            link_cost.iter().all(|&c| !c.is_nan() && c >= 0.0),
            "link costs must be non-negative"
        );
        let mut degree = vec![0u32; n];
        for &(u, v, w) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n && u != v,
                "interaction endpoints must be distinct in-range tasks"
            );
            assert!(
                w.is_finite() && w >= 0.0,
                "interaction volumes must be finite and non-negative"
            );
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        adj_offsets.push(0u32);
        for t in 0..n {
            adj_offsets.push(adj_offsets[t] + degree[t]);
        }
        let total = adj_offsets[n] as usize;
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_targets = vec![0u32; total];
        let mut adj_volumes = vec![0.0f64; total];
        for &(u, v, w) in edges {
            let cu = cursor[u as usize] as usize;
            adj_targets[cu] = v;
            adj_volumes[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj_targets[cv] = u;
            adj_volumes[cv] = w;
            cursor[v as usize] += 1;
        }
        MappingInstance {
            task_comp,
            adj_offsets,
            adj_targets,
            adj_volumes,
            proc_cost,
            link_cost,
        }
    }

    /// Number of tasks `|V_t|`.
    pub fn n_tasks(&self) -> usize {
        self.task_comp.len()
    }

    /// Number of resources `|V_r|`.
    pub fn n_resources(&self) -> usize {
        self.proc_cost.len()
    }

    /// True when `|V_t| = |V_r|` (the paper's experimental regime).
    pub fn is_square(&self) -> bool {
        self.n_tasks() == self.n_resources()
    }

    /// `W^t`.
    pub fn computation(&self, t: usize) -> f64 {
        self.task_comp[t]
    }

    /// `w_s`.
    pub fn processing_cost(&self, s: usize) -> f64 {
        self.proc_cost[s]
    }

    /// `c_{s,b}` (0 on the diagonal).
    pub fn link_cost(&self, s: usize, b: usize) -> f64 {
        self.link_cost[s * self.n_resources() + b]
    }

    /// Interactions of task `t` as `(neighbour, volume)` pairs.
    pub fn interactions(&self, t: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.adj_offsets[t] as usize;
        let hi = self.adj_offsets[t + 1] as usize;
        self.adj_targets[lo..hi]
            .iter()
            .zip(&self.adj_volumes[lo..hi])
            .map(|(&a, &c)| (a as usize, c))
    }

    /// Interaction degree of task `t`.
    pub fn degree(&self, t: usize) -> usize {
        (self.adj_offsets[t + 1] - self.adj_offsets[t]) as usize
    }

    /// Total number of directed adjacency entries (`2|E_t|`).
    pub fn adjacency_len(&self) -> usize {
        self.adj_targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;
    use match_graph::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn tiny_instance() -> MappingInstance {
        // TIG: 0-1 (volume 10), 1-2 (volume 20); W = [1, 2, 3].
        let mut tg = Graph::from_node_weights(vec![1.0, 2.0, 3.0]).unwrap();
        tg.add_edge(0, 1, 10.0).unwrap();
        tg.add_edge(1, 2, 20.0).unwrap();
        let tig = TaskGraph::new(tg).unwrap();
        // Platform: complete K3; w = [1, 2, 4]; links all cost 5 except
        // (0,2) which costs 7.
        let mut rg = Graph::from_node_weights(vec![1.0, 2.0, 4.0]).unwrap();
        rg.add_edge(0, 1, 5.0).unwrap();
        rg.add_edge(1, 2, 5.0).unwrap();
        rg.add_edge(0, 2, 7.0).unwrap();
        let resources = ResourceGraph::new(rg).unwrap();
        MappingInstance::new(&tig, &resources)
    }

    #[test]
    fn flattening_preserves_structure() {
        let inst = tiny_instance();
        assert_eq!(inst.n_tasks(), 3);
        assert_eq!(inst.n_resources(), 3);
        assert!(inst.is_square());
        assert_eq!(inst.computation(2), 3.0);
        assert_eq!(inst.processing_cost(2), 4.0);
        assert_eq!(inst.link_cost(0, 2), 7.0);
        assert_eq!(inst.link_cost(1, 1), 0.0);
        assert_eq!(inst.degree(1), 2);
        assert_eq!(inst.adjacency_len(), 4);
        let n1: Vec<(usize, f64)> = inst.interactions(1).collect();
        assert!(n1.contains(&(0, 10.0)));
        assert!(n1.contains(&(2, 20.0)));
        assert_eq!(inst.interactions(0).collect::<Vec<_>>(), vec![(1, 10.0)]);
    }

    #[test]
    fn from_pair_matches_new() {
        let mut rng = StdRng::seed_from_u64(7);
        let pair = InstanceGenerator::paper_family(12).generate(&mut rng);
        let a = MappingInstance::from_pair(&pair);
        let b = MappingInstance::new(&pair.tig, &pair.resources);
        assert_eq!(a, b);
        assert_eq!(a.n_tasks(), 12);
    }

    #[test]
    fn from_parts_matches_graph_flattening() {
        let mut rng = StdRng::seed_from_u64(11);
        let pair = InstanceGenerator::paper_family(10).generate(&mut rng);
        let via_graphs = MappingInstance::from_pair(&pair);
        let edges: Vec<(u32, u32, f64)> = pair
            .tig
            .graph()
            .edges()
            .map(|(u, v, w)| (u as u32, v as u32, w))
            .collect();
        let rebuilt = MappingInstance::from_parts(
            (0..pair.tig.len())
                .map(|t| pair.tig.computation(t))
                .collect(),
            &edges,
            (0..pair.resources.len())
                .map(|s| pair.resources.processing_cost(s))
                .collect(),
            pair.resources.link_cost_matrix().to_vec(),
        );
        assert_eq!(rebuilt.n_tasks(), via_graphs.n_tasks());
        assert_eq!(rebuilt.n_resources(), via_graphs.n_resources());
        for t in 0..rebuilt.n_tasks() {
            assert_eq!(rebuilt.computation(t), via_graphs.computation(t));
            let mut a: Vec<_> = rebuilt.interactions(t).collect();
            let mut b: Vec<_> = via_graphs.interactions(t).collect();
            a.sort_by_key(|x| x.0);
            b.sort_by_key(|x| x.0);
            assert_eq!(a, b, "task {t} adjacency differs");
        }
        for s in 0..rebuilt.n_resources() {
            assert_eq!(rebuilt.processing_cost(s), via_graphs.processing_cost(s));
            for b in 0..rebuilt.n_resources() {
                assert_eq!(rebuilt.link_cost(s, b), via_graphs.link_cost(s, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "link matrix must be")]
    fn from_parts_rejects_misshapen_link_matrix() {
        MappingInstance::from_parts(vec![1.0, 2.0], &[], vec![1.0, 1.0], vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "distinct in-range tasks")]
    fn from_parts_rejects_self_loops() {
        MappingInstance::from_parts(vec![1.0, 2.0], &[(1, 1, 5.0)], vec![1.0], vec![0.0]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let pair = InstanceGenerator::paper_family(15).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        for t in 0..15 {
            for (a, c) in inst.interactions(t) {
                assert!(
                    inst.interactions(a).any(|(b, c2)| b == t && c2 == c),
                    "asymmetric adjacency {t} <-> {a}"
                );
            }
        }
    }
}
