//! Cooperative cancellation for long-running solvers.
//!
//! The mapping daemon (`match-serve`) runs heuristics on behalf of
//! remote clients with per-request deadlines, and a graceful shutdown
//! must be able to interrupt a solve mid-flight. Rust offers no safe
//! preemption, so cancellation is *cooperative*: the caller hands the
//! solver a [`StopToken`] and the solver polls
//! [`StopToken::should_stop`] at iteration boundaries (a CE iteration,
//! a GA generation, an SA epoch, a hill-climbing restart). When the
//! token fires, the solver stops early and returns the best mapping
//! found so far — a truncated but valid [`MapperOutcome`].
//!
//! The poll is cheap by construction — one relaxed atomic load plus at
//! most one monotonic clock read — so checking once per iteration adds
//! nothing measurable to solver cost. Crucially, polling consumes no
//! randomness: a solve that is never cancelled follows exactly the same
//! RNG trajectory as one run without a token.
//!
//! [`MapperOutcome`]: crate::mapper::MapperOutcome

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared flag that requests cancellation of one or more solves.
///
/// Clones share the same underlying flag; tripping any clone trips them
/// all. The flag is one-way: once tripped it stays tripped.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// A fresh, untripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn trip(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a solver polls to decide whether to stop early: an optional
/// [`StopFlag`] (externally tripped) and/or an optional deadline
/// (checked against the monotonic clock at poll time — no watchdog
/// thread involved).
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    flag: Option<StopFlag>,
    deadline: Option<Instant>,
}

impl StopToken {
    /// A token that never fires — the default for direct solver calls.
    pub fn never() -> Self {
        Self::default()
    }

    /// A token controlled by an external flag.
    pub fn with_flag(flag: StopFlag) -> Self {
        StopToken {
            flag: Some(flag),
            deadline: None,
        }
    }

    /// A token that fires once the monotonic clock reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        StopToken {
            flag: None,
            deadline: Some(deadline),
        }
    }

    /// Add (or replace) a deadline on this token, keeping any flag.
    pub fn and_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether this token can ever fire.
    pub fn is_never(&self) -> bool {
        self.flag.is_none() && self.deadline.is_none()
    }

    /// Poll the token: `true` once the flag is tripped or the deadline
    /// has passed. Solvers call this at iteration boundaries.
    pub fn should_stop(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.is_tripped() {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_fires() {
        let t = StopToken::never();
        assert!(t.is_never());
        assert!(!t.should_stop());
    }

    #[test]
    fn flag_trips_all_clones() {
        let flag = StopFlag::new();
        let t = StopToken::with_flag(flag.clone());
        assert!(!t.should_stop());
        flag.clone().trip();
        assert!(flag.is_tripped());
        assert!(t.should_stop());
    }

    #[test]
    fn expired_deadline_fires_immediately() {
        let t = StopToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!t.is_never());
        assert!(t.should_stop());
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = StopToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.should_stop());
    }

    #[test]
    fn and_deadline_keeps_flag() {
        let flag = StopFlag::new();
        let t = StopToken::with_flag(flag.clone())
            .and_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.should_stop());
        flag.trip();
        assert!(t.should_stop(), "flag must still fire after and_deadline");
    }
}
