//! Knobs for the multilevel coarsen–solve–refine driver.
//!
//! The driver itself lives in `match-multilevel` (it needs the CE and
//! GA engines for the coarse solve), but the configuration lives here so
//! `matchctl` and the service registry can construct and validate it
//! without pulling in the driver crate's solver plumbing — the same
//! split [`MatchConfig`](crate::MatchConfig) uses for the flat solver.

/// Configuration for the multilevel driver.
///
/// The driver coarsens the task-interaction graph by iterated heavy-edge
/// matching until at most [`coarsen_target`](Self::coarsen_target) tasks
/// remain, solves that paper-scale instance with an existing heuristic,
/// then projects the mapping back level by level, running
/// [`refine_passes`](Self::refine_passes) passes of delta-cost local
/// refinement at each level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelConfig {
    /// Stop coarsening once the task count is at or below this. The
    /// default (48) keeps the coarsest instance at the paper's n ≈ 50
    /// scale, where the CE's `N = 2n²` sample budget is affordable.
    pub coarsen_target: usize,
    /// Local-refinement passes per uncoarsening level. Zero disables
    /// refinement (projection only) — useful for isolating coarsening
    /// quality, not recommended for real solves.
    pub refine_passes: usize,
    /// Random partner candidates proposed per task per pass; one guided
    /// candidate (towards the heaviest neighbour's resource) is always
    /// added on top.
    pub refine_candidates: usize,
    /// Worker threads for the refinement proposal fan-out. Results are
    /// bit-identical across thread counts.
    pub threads: usize,
    /// Evaluation backend pinned onto the coarse solver's batched
    /// pipeline (see [`MatchConfig`](crate::MatchConfig)'s `backend`
    /// field). Coarse instances carry non-zero link diagonals, so the
    /// lane kernel runs its masked co-location variant there — still
    /// bit-identical to scalar.
    pub backend: match_eval::EvalBackend,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_target: 48,
            refine_passes: 2,
            refine_candidates: 4,
            threads: match_par::default_threads(),
            backend: match_eval::EvalBackend::default(),
        }
    }
}

impl MultilevelConfig {
    /// Panic with a descriptive message when a field is out of range.
    pub fn validate(&self) {
        assert!(
            self.coarsen_target >= 2,
            "coarsen target must be at least 2"
        );
        assert!(
            self.refine_candidates >= 1,
            "need at least one refinement candidate per task"
        );
        assert!(self.threads > 0, "need at least one worker thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_scale() {
        let c = MultilevelConfig::default();
        c.validate();
        assert_eq!(c.coarsen_target, 48);
    }

    #[test]
    #[should_panic(expected = "coarsen target must be at least 2")]
    fn tiny_coarsen_target_is_refused() {
        MultilevelConfig {
            coarsen_target: 1,
            ..MultilevelConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "need at least one worker thread")]
    fn zero_threads_is_refused() {
        MultilevelConfig {
            threads: 0,
            ..MultilevelConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "need at least one refinement candidate")]
    fn zero_candidates_is_refused() {
        MultilevelConfig {
            refine_candidates: 0,
            ..MultilevelConfig::default()
        }
        .validate();
    }
}
