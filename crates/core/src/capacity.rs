//! Optional capacity term on the Eq. 1 objective.
//!
//! Wilhelm et al. (*Modeling Task Mapping for Data-intensive
//! Applications in Heterogeneous Systems*) extend the mapping objective
//! with per-resource memory and bandwidth capacities: a mapping that
//! overflows a resource's capacity is penalised in proportion to the
//! overflow. The paper's own Eq. 1/Eq. 2 model stays untouched — the
//! penalty is a strictly additive term, zero whenever every resource
//! fits (and exactly `0.0` when `gamma == 0`), so capacity-free solves
//! are bit-identical with or without this module in the loop.

use crate::problem::MappingInstance;
use match_graph::gen::topology::CapacitySpec;

/// Per-task demands, per-resource capacities, and the penalty weight γ.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityModel {
    /// Memory demand per task.
    pub mem_demand: Vec<f64>,
    /// Memory capacity per resource.
    pub mem_capacity: Vec<f64>,
    /// Bandwidth demand per task.
    pub bw_demand: Vec<f64>,
    /// Bandwidth capacity per resource.
    pub bw_capacity: Vec<f64>,
    /// Penalty weight: the objective becomes `Exec + γ · overflow`.
    pub gamma: f64,
}

impl CapacityModel {
    /// Build from a generated [`CapacitySpec`] with penalty weight `gamma`.
    pub fn from_spec(spec: &CapacitySpec, gamma: f64) -> Self {
        CapacityModel {
            mem_demand: spec.mem_demand.clone(),
            mem_capacity: spec.mem_capacity.clone(),
            bw_demand: spec.bw_demand.clone(),
            bw_capacity: spec.bw_capacity.clone(),
            gamma,
        }
    }

    /// Panic on shape mismatch against `inst`.
    pub fn validate(&self, inst: &MappingInstance) {
        assert_eq!(self.mem_demand.len(), inst.n_tasks(), "mem demand per task");
        assert_eq!(self.bw_demand.len(), inst.n_tasks(), "bw demand per task");
        assert_eq!(
            self.mem_capacity.len(),
            inst.n_resources(),
            "mem capacity per resource"
        );
        assert_eq!(
            self.bw_capacity.len(),
            inst.n_resources(),
            "bw capacity per resource"
        );
        assert!(self.gamma >= 0.0, "gamma must be non-negative");
    }

    /// Total capacity overflow of `assign`: `Σ_s max(0, load_s − cap_s)`
    /// summed over both the memory and bandwidth dimensions.
    pub fn overflow(&self, assign: &[usize]) -> f64 {
        let nr = self.mem_capacity.len();
        let mut mem = vec![0.0f64; nr];
        let mut bw = vec![0.0f64; nr];
        for (t, &s) in assign.iter().enumerate() {
            mem[s] += self.mem_demand[t];
            bw[s] += self.bw_demand[t];
        }
        let mut over = 0.0;
        for s in 0..nr {
            over += (mem[s] - self.mem_capacity[s]).max(0.0);
            over += (bw[s] - self.bw_capacity[s]).max(0.0);
        }
        over
    }

    /// The additive penalty `γ · overflow(assign)`; exactly `0.0` when
    /// `γ == 0`, so the capacitated objective degrades to plain Eq. 2
    /// bit-for-bit.
    pub fn penalty(&self, assign: &[usize]) -> f64 {
        if self.gamma == 0.0 {
            return 0.0;
        }
        self.gamma * self.overflow(assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::topology::{TopologyConfig, TopologyKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(n: usize, gamma: f64) -> CapacityModel {
        let cfg = TopologyConfig::new(TopologyKind::Grid, n);
        let spec = cfg.generate_caps(&mut StdRng::seed_from_u64(9));
        CapacityModel::from_spec(&spec, gamma)
    }

    #[test]
    fn zero_gamma_is_exactly_free() {
        let m = model(8, 0.0);
        let assign = vec![0usize; 8]; // pile everything on resource 0
        assert!(m.overflow(&assign) > 0.0, "pile-up should overflow");
        assert_eq!(m.penalty(&assign).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn spread_mapping_fits_pileup_does_not() {
        let m = model(8, 1.0);
        let spread: Vec<usize> = (0..8).collect();
        let pile = vec![0usize; 8];
        assert!(m.penalty(&spread) <= m.penalty(&pile));
        assert!(m.penalty(&pile) > 0.0);
    }

    #[test]
    fn penalty_scales_linearly_with_gamma() {
        let base = model(8, 1.0);
        let double = CapacityModel {
            gamma: 2.0,
            ..base.clone()
        };
        let pile = vec![0usize; 8];
        assert_eq!(
            (2.0 * base.penalty(&pile)).to_bits(),
            double.penalty(&pile).to_bits()
        );
    }
}
