//! Bridge between [`MappingInstance`] and the `match-eval` batch
//! kernels: build a structure-of-arrays [`InstancePlan`] once per solve
//! and score whole chunks of flat sample rows through it.
//!
//! `match-eval` sits below `match-ce` in the dependency graph and
//! speaks raw slices; this module owns the one place the instance's
//! cost tables are flattened into a plan, and implements the CE
//! driver's [`FlatEvaluator`] contract on top of it. Both backends are
//! bit-identical to [`exec_time`](crate::cost::exec_time) (see the
//! `match-eval` crate docs for the argument), so plugging the plan into
//! a solver changes throughput, never trajectories.

use crate::problem::MappingInstance;
use match_ce::batch::FlatEvaluator;
use match_eval::{EvalBackend, EvalScratch, InstancePlan};

/// Flatten an instance's cost tables into an [`InstancePlan`].
///
/// Processing-table precomputation and the link-diagonal probe happen
/// inside `InstancePlan::new`; graph-layer instances always carry an
/// all-`+0.0` diagonal, so they get the mask-free lane kernel, while
/// coarse multilevel matrices (non-zero diagonals) get the masked one.
pub fn build_plan(inst: &MappingInstance) -> InstancePlan {
    let n_t = inst.n_tasks();
    let n_r = inst.n_resources();
    let task_comp: Vec<f64> = (0..n_t).map(|t| inst.computation(t)).collect();
    let proc_cost: Vec<f64> = (0..n_r).map(|s| inst.processing_cost(s)).collect();
    let mut link = Vec::with_capacity(n_r * n_r);
    for s in 0..n_r {
        for b in 0..n_r {
            link.push(inst.link_cost(s, b));
        }
    }
    let mut offsets = Vec::with_capacity(n_t + 1);
    offsets.push(0u32);
    let mut targets = Vec::with_capacity(inst.adjacency_len());
    let mut volumes = Vec::with_capacity(inst.adjacency_len());
    for t in 0..n_t {
        for (a, c) in inst.interactions(t) {
            targets.push(a as u32);
            volumes.push(c);
        }
        offsets.push(targets.len() as u32);
    }
    InstancePlan::new(task_comp, offsets, targets, volumes, proc_cost, link)
}

/// A [`FlatEvaluator`] scoring sample rows against one instance's plan
/// with a chosen [`EvalBackend`] — what the CE matcher and FastMap-GA
/// hand to their batched pipelines.
#[derive(Debug, Clone)]
pub struct PlanEvaluator {
    plan: InstancePlan,
    backend: EvalBackend,
}

impl PlanEvaluator {
    /// Build the plan for `inst` and pin the backend (`Auto` resolves
    /// per chunk on batch width).
    pub fn new(inst: &MappingInstance, backend: EvalBackend) -> Self {
        PlanEvaluator {
            plan: build_plan(inst),
            backend,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &InstancePlan {
        &self.plan
    }

    /// The configured backend.
    pub fn backend(&self) -> EvalBackend {
        self.backend
    }
}

impl FlatEvaluator for PlanEvaluator {
    type Scratch = EvalScratch;

    fn new_scratch(&self) -> EvalScratch {
        self.plan.new_scratch()
    }

    fn evaluate_rows(&self, rows: &[usize], costs: &mut [f64], scratch: &mut EvalScratch) {
        self.plan
            .eval_batch(self.backend, rows, costs, None, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{exec_per_resource, exec_time};
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::perm::random_permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn plan_reproduces_cost_model_bitwise() {
        for (n, seed) in [(6usize, 31u64), (17, 32), (40, 33)] {
            let inst = instance(n, seed);
            let plan = build_plan(&inst);
            assert!(plan.diag_zero(), "graph-layer link diagonals are +0.0");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            let mut loads = vec![0.0; n];
            for _ in 0..20 {
                let assign = random_permutation(n, &mut rng);
                let got = plan.eval_row(&assign, &mut loads);
                assert_eq!(got.to_bits(), exec_time(&inst, &assign).to_bits());
                let want = exec_per_resource(&inst, &assign);
                for (a, b) in loads.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn evaluator_scores_batches_like_exec_time() {
        let n = 24;
        let inst = instance(n, 34);
        let mut rng = StdRng::seed_from_u64(35);
        let n_rows = 21; // two lane groups + a tail
        let rows: Vec<usize> = (0..n_rows * n).map(|_| rng.random_range(0..n)).collect();
        for backend in [EvalBackend::Auto, EvalBackend::Scalar, EvalBackend::Simd] {
            let eval = PlanEvaluator::new(&inst, backend);
            let mut scratch = eval.new_scratch();
            let mut costs = vec![0.0; n_rows];
            eval.evaluate_rows(&rows, &mut costs, &mut scratch);
            for (r, &c) in costs.iter().enumerate() {
                let want = exec_time(&inst, &rows[r * n..(r + 1) * n]);
                assert_eq!(c.to_bits(), want.to_bits(), "backend {backend} row {r}");
            }
        }
    }
}
