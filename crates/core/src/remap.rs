//! Incremental re-mapping for dynamic workloads.
//!
//! When tasks arrive and depart over time, re-solving every epoch from
//! scratch throws away the previous epoch's mapping — both its search
//! effort and its placement (every moved task pays a migration). This
//! module re-maps *incrementally*:
//!
//! 1. **Warm-started CE** (optional): the stochastic matrix is seeded
//!    from the prior mapping (a delta matrix blended toward uniform by
//!    `α`, through the same [`Matcher::run_warm_controlled`] seam the
//!    serve warm store uses), so CE skips most of its burn-in.
//! 2. **Delta refinement on the changed subgraph**: FM-style swap
//!    passes restricted to the event-touched tasks (and whatever the
//!    caller adds — typically their TIG neighbours), scored by the
//!    O(degree) [`IncrementalCost`] kernel.
//!
//! The objective carries a migration-cost term `μ · |{t : x_t ≠
//! prior_t}|`: refinement accepts a swap only when Eq. 2 *plus* the
//! migration charge improves, and the outcome reports the two terms
//! separately so callers can see quality and churn independently.
//!
//! Contracts the verify harness pins:
//! * no prior (or an invalid one) falls back to a cold solve that is
//!   bit-identical to [`Matcher::run_controlled`] with the same seed;
//! * an empty `changed` set under [`RemapStrategy::RefineOnly`] returns
//!   the prior mapping unchanged, with `cost` bit-equal to a fresh
//!   Eq. 2 evaluation and zero migrations;
//! * `total == cost + migration_cost` by construction.

use crate::control::StopToken;
use crate::cost::{exec_time, IncrementalCost};
use crate::mapping::Mapping;
use crate::matcher::{MatchConfig, Matcher};
use crate::problem::MappingInstance;
use match_ce::stochmatrix::StochasticMatrix;
use match_telemetry::{NullRecorder, Recorder, Span};
use rand::rngs::StdRng;
use std::time::{Duration, Instant};

/// How the incremental pass searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemapStrategy {
    /// Keep the prior mapping and run only delta refinement on the
    /// changed subgraph — the fast path for large `n`, where a fresh CE
    /// solve (even warm) pays the full `2n²` sampling bill.
    #[default]
    RefineOnly,
    /// Warm-started CE seeded from the prior mapping, then delta
    /// refinement. Better quality on heavily-perturbed instances; costs
    /// CE iterations.
    WarmCe,
}

/// Tunables for [`remap_incremental`].
#[derive(Debug, Clone)]
pub struct RemapConfig {
    /// CE configuration used by [`RemapStrategy::WarmCe`] and by the
    /// cold fallback.
    pub match_config: MatchConfig,
    /// Search strategy.
    pub strategy: RemapStrategy,
    /// Warm-seed blend for [`RemapStrategy::WarmCe`]: the CE matrix
    /// starts at `α·delta(prior) + (1−α)·uniform`.
    pub alpha: f64,
    /// Migration cost per moved task (`μ`).
    pub mu: f64,
    /// Refinement passes over the changed set.
    pub refine_passes: usize,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig {
            match_config: MatchConfig::default(),
            strategy: RemapStrategy::default(),
            alpha: 0.5,
            mu: 0.0,
            refine_passes: 2,
        }
    }
}

/// Everything an incremental re-map produces.
#[derive(Debug, Clone)]
pub struct RemapOutcome {
    /// The new mapping.
    pub mapping: Mapping,
    /// Its Eq. 2 execution time (freshly recomputed, oracle-grade).
    pub cost: f64,
    /// `|{t : mapping_t ≠ prior_t}|` — tasks that must migrate.
    pub migrated: usize,
    /// `μ · migrated`, reported separately from `cost`.
    pub migration_cost: f64,
    /// `cost + migration_cost` — the objective the search minimised.
    pub total: f64,
    /// Whether the prior mapping actually seeded the search.
    pub warm: bool,
    /// CE iterations executed (0 for pure refinement).
    pub iterations: usize,
    /// Objective evaluations, including refinement peeks.
    pub evaluations: u64,
    /// Wall-clock re-mapping time.
    pub elapsed: Duration,
}

/// Incrementally re-map `inst`, starting from `prior` where possible.
///
/// `changed` names the tasks whose neighbourhood the event batch
/// touched; refinement swaps are restricted to them. Out-of-range ids
/// are ignored and duplicates are collapsed. `prior` must be a valid
/// permutation of `inst`'s tasks to be used; anything else (including
/// `None`) takes the cold-solve fallback, bit-identical to
/// [`Matcher::run_controlled`] under the same seed.
pub fn remap_incremental(
    inst: &MappingInstance,
    prior: Option<&[usize]>,
    changed: &[usize],
    cfg: &RemapConfig,
    rng: &mut StdRng,
    recorder: &mut dyn Recorder,
    stop: &StopToken,
) -> RemapOutcome {
    assert!(
        inst.is_square(),
        "incremental re-mapping needs |V_t| = |V_r|"
    );
    assert!(cfg.mu >= 0.0, "mu must be non-negative");
    let start = Instant::now();
    let n = inst.n_tasks();
    let span = Span::start("remap", 0);

    let valid_prior = prior.filter(|p| p.len() == n && match_rngutil::perm::is_permutation(p));

    let outcome = match valid_prior {
        None => {
            // Cold fallback: the exact cold-path CE trajectory.
            let matcher = Matcher::new(cfg.match_config.clone());
            let (out, _) = matcher.run_warm_controlled(inst, rng, recorder, stop, None, 0.0);
            let migrated = match prior {
                Some(p) => (0..n)
                    .filter(|&t| p.get(t) != Some(&out.mapping.as_slice()[t]))
                    .count(),
                None => 0,
            };
            let migration_cost = cfg.mu * migrated as f64;
            RemapOutcome {
                cost: out.cost,
                total: out.cost + migration_cost,
                migrated,
                migration_cost,
                warm: false,
                iterations: out.iterations,
                evaluations: out.evaluations,
                elapsed: Duration::ZERO,
                mapping: out.mapping,
            }
        }
        Some(p) => {
            let mut evaluations: u64 = 0;
            let mut iterations = 0usize;
            let mut warm = true;
            let start_assign = match cfg.strategy {
                RemapStrategy::WarmCe => {
                    let delta = delta_matrix(p, n);
                    let matcher = Matcher::new(cfg.match_config.clone());
                    let (out, _) = matcher.run_warm_controlled(
                        inst,
                        rng,
                        recorder,
                        stop,
                        Some(&delta),
                        cfg.alpha,
                    );
                    warm = cfg.alpha > 0.0;
                    iterations = out.iterations;
                    evaluations = out.evaluations;
                    out.mapping.as_slice().to_vec()
                }
                RemapStrategy::RefineOnly => p.to_vec(),
            };

            let mut changed_set: Vec<usize> = changed.iter().copied().filter(|&t| t < n).collect();
            changed_set.sort_unstable();
            changed_set.dedup();

            let refine = Span::start("refine-delta", 0);
            let mut inc = IncrementalCost::new(inst, start_assign);
            let mut moved: Vec<bool> = (0..n).map(|t| inc.assign()[t] != p[t]).collect();
            let mut moved_count = moved.iter().filter(|&&m| m).count();
            let mut cur_total = inc.cost() + cfg.mu * moved_count as f64;
            for _pass in 0..cfg.refine_passes {
                let mut improved = false;
                for &t in &changed_set {
                    let mut best: Option<(usize, f64, usize)> = None;
                    for u in 0..n {
                        if u == t {
                            continue;
                        }
                        let new_cost = inc.peek_swap(t, u);
                        evaluations += 1;
                        let after = usize::from(inc.assign()[u] != p[t])
                            + usize::from(inc.assign()[t] != p[u]);
                        let before = usize::from(moved[t]) + usize::from(moved[u]);
                        let new_moved = moved_count + after - before;
                        let new_total = new_cost + cfg.mu * new_moved as f64;
                        if new_total < best.map_or(cur_total, |(_, bt, _)| bt) {
                            best = Some((u, new_total, new_moved));
                        }
                    }
                    if let Some((u, new_total, new_moved)) = best {
                        inc.apply_swap(t, u);
                        moved[t] = inc.assign()[t] != p[t];
                        moved[u] = inc.assign()[u] != p[u];
                        moved_count = new_moved;
                        cur_total = new_total;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            refine.finish(recorder);

            let assign = inc.assign().to_vec();
            // Fresh Eq. 2 recomputation: the incremental loads drift by
            // at most rounding, but the reported cost must satisfy the
            // independent-oracle check bit for bit.
            let cost = exec_time(inst, &assign);
            let migrated = (0..n).filter(|&t| assign[t] != p[t]).count();
            let migration_cost = cfg.mu * migrated as f64;
            RemapOutcome {
                mapping: Mapping::new(assign),
                cost,
                migrated,
                migration_cost,
                total: cost + migration_cost,
                warm,
                iterations,
                evaluations,
                elapsed: Duration::ZERO,
            }
        }
    };

    span.finish(recorder);
    RemapOutcome {
        elapsed: start.elapsed(),
        ..outcome
    }
}

/// [`remap_incremental`] without telemetry or cancellation.
pub fn remap(
    inst: &MappingInstance,
    prior: Option<&[usize]>,
    changed: &[usize],
    cfg: &RemapConfig,
    rng: &mut StdRng,
) -> RemapOutcome {
    remap_incremental(
        inst,
        prior,
        changed,
        cfg,
        rng,
        &mut NullRecorder,
        &StopToken::never(),
    )
}

/// A stochastic matrix concentrated on `prior`: row `t` puts all mass
/// on `prior[t]`. Blended toward uniform by `α` inside
/// [`Matcher::run_warm_controlled`], this is the "remember where every
/// task sat" warm seed.
fn delta_matrix(prior: &[usize], n: usize) -> StochasticMatrix {
    let mut data = vec![0.0f64; n * n];
    for (t, &s) in prior.iter().enumerate() {
        data[t * n + s] = 1.0;
    }
    StochasticMatrix::from_rows(n, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::SamplerMode;
    use match_graph::gen::InstanceGenerator;
    use match_telemetry::{Event, MemoryRecorder};
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    fn quick_config() -> RemapConfig {
        RemapConfig {
            match_config: MatchConfig {
                threads: 1,
                max_iters: 30,
                ..MatchConfig::default()
            },
            ..RemapConfig::default()
        }
    }

    #[test]
    fn no_prior_matches_cold_solve_exactly() {
        let inst = instance(8, 1);
        let cfg = quick_config();
        let cold = Matcher::new(cfg.match_config.clone()).run(&inst, &mut StdRng::seed_from_u64(2));
        let out = remap(&inst, None, &[], &cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(out.mapping, cold.mapping);
        assert_eq!(out.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(out.iterations, cold.iterations);
        assert_eq!(out.evaluations, cold.evaluations);
        assert!(!out.warm);
        assert_eq!(out.migrated, 0);
        assert_eq!(out.total.to_bits(), out.cost.to_bits());
    }

    #[test]
    fn invalid_prior_takes_cold_path() {
        let inst = instance(8, 3);
        let cfg = quick_config();
        let bad = vec![0usize; 8]; // not a permutation
        let out = remap(
            &inst,
            Some(&bad),
            &[0, 1],
            &cfg,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(!out.warm);
        assert!(out.mapping.is_permutation());
    }

    #[test]
    fn empty_changed_set_keeps_prior_bit_identical() {
        let inst = instance(9, 5);
        let cfg = RemapConfig {
            strategy: RemapStrategy::RefineOnly,
            ..quick_config()
        };
        let prior: Vec<usize> = (0..9).rev().collect();
        let out = remap(
            &inst,
            Some(&prior),
            &[],
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        assert_eq!(out.mapping.as_slice(), &prior[..]);
        assert_eq!(out.cost.to_bits(), exec_time(&inst, &prior).to_bits());
        assert_eq!(out.migrated, 0);
        assert_eq!(out.evaluations, 0);
        assert!(out.warm);
    }

    #[test]
    fn refinement_never_worsens_the_total_objective() {
        let inst = instance(10, 7);
        for mu in [0.0, 10.0, 1000.0] {
            let cfg = RemapConfig {
                strategy: RemapStrategy::RefineOnly,
                mu,
                ..quick_config()
            };
            let prior: Vec<usize> = (0..10).collect();
            let changed: Vec<usize> = (0..10).collect();
            let out = remap(
                &inst,
                Some(&prior),
                &changed,
                &cfg,
                &mut StdRng::seed_from_u64(8),
            );
            let prior_total = exec_time(&inst, &prior);
            assert!(out.mapping.is_permutation());
            assert!(
                out.total <= prior_total,
                "mu={mu}: total {} worse than staying put {prior_total}",
                out.total
            );
            assert_eq!(
                out.total.to_bits(),
                (out.cost + out.migration_cost).to_bits()
            );
            assert_eq!(
                out.migration_cost.to_bits(),
                (mu * out.migrated as f64).to_bits()
            );
        }
    }

    #[test]
    fn huge_mu_pins_the_prior() {
        // With an enormous migration charge no swap can pay for itself.
        let inst = instance(10, 9);
        let cfg = RemapConfig {
            strategy: RemapStrategy::RefineOnly,
            mu: 1e12,
            ..quick_config()
        };
        let prior: Vec<usize> = (0..10).rev().collect();
        let changed: Vec<usize> = (0..10).collect();
        let out = remap(
            &inst,
            Some(&prior),
            &changed,
            &cfg,
            &mut StdRng::seed_from_u64(10),
        );
        assert_eq!(out.mapping.as_slice(), &prior[..]);
        assert_eq!(out.migrated, 0);
    }

    #[test]
    fn warm_ce_emits_remap_and_refine_spans() {
        let inst = instance(8, 11);
        let cfg = RemapConfig {
            strategy: RemapStrategy::WarmCe,
            match_config: MatchConfig {
                threads: 1,
                max_iters: 10,
                sampler: SamplerMode::Batched,
                ..MatchConfig::default()
            },
            ..RemapConfig::default()
        };
        let prior: Vec<usize> = (0..8).collect();
        let mut rec = MemoryRecorder::new();
        let out = remap_incremental(
            &inst,
            Some(&prior),
            &[0, 1, 2],
            &cfg,
            &mut StdRng::seed_from_u64(12),
            &mut rec,
            &StopToken::never(),
        );
        assert!(out.warm);
        assert!(out.iterations >= 1);
        let spans: Vec<String> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s.name.to_string()),
                _ => None,
            })
            .collect();
        assert!(spans.iter().any(|s| s == "remap"), "spans: {spans:?}");
        assert!(
            spans.iter().any(|s| s == "refine-delta"),
            "spans: {spans:?}"
        );
    }

    #[test]
    fn changed_ids_out_of_range_are_ignored() {
        let inst = instance(6, 13);
        let cfg = RemapConfig {
            strategy: RemapStrategy::RefineOnly,
            ..quick_config()
        };
        let prior: Vec<usize> = (0..6).collect();
        let out = remap(
            &inst,
            Some(&prior),
            &[99, 5, 5, 0],
            &cfg,
            &mut StdRng::seed_from_u64(14),
        );
        assert!(out.mapping.is_permutation());
    }
}
