//! The MaTCH algorithm (paper Figure 5).
//!
//! MaTCH is cross-entropy optimisation over the GenPerm permutation
//! model: start from the uniform stochastic matrix (`p_ij = 1/|V_r|`),
//! repeatedly sample `N = 2|V_r|²` candidate mappings with GenPerm
//! (Figure 4), score them with the execution-time model (Eq. 2), fit the
//! matrix to the `ρ`-elite (Eq. 11), smooth with `ζ = 0.3` (Eq. 13), and
//! stop when each row's maximal element has been stable for `c = 5`
//! iterations (Eq. 12).
//!
//! Sample evaluation dominates the run time (`N` independent Eq.-2
//! evaluations per iteration) and is fanned out across threads with
//! `match-par`.

use crate::batcheval::PlanEvaluator;
use crate::control::StopToken;
use crate::cost::exec_time;
use crate::mapper::{record_run_start, Mapper, MapperOutcome};
use crate::mapping::Mapping;
use crate::problem::MappingInstance;
use match_ce::batch::FlatSampler;
use match_ce::driver::{
    minimize_controlled, minimize_flat, minimize_flat_with, minimize_traced, CeConfig, CeTelemetry,
    StopReason,
};
use match_ce::models::assignment::AssignmentModel;
use match_ce::models::permutation::PermutationModel;
use match_ce::stochmatrix::StochasticMatrix;
use match_eval::EvalBackend;
use match_telemetry::{Event, NullRecorder, PoolEvent, Recorder};
use rand::rngs::StdRng;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// How the CE driver draws each iteration's `N`-sample batch.
///
/// The two concrete modes draw the **same distribution** but consume
/// different RNG streams, so they produce different (equally valid)
/// trajectories from the same seed:
///
/// * [`SamplerMode::Sequential`] draws all samples on the driver thread
///   from the run RNG — the historical behaviour, bit-compatible with
///   every release since the seed. Only evaluation fans out.
/// * [`SamplerMode::Batched`] fuses sampling and evaluation inside the
///   `match-par` workers: the run RNG is consumed once per iteration
///   (a single `u64` iteration seed) and sample `i` draws from its own
///   SplitMix64-derived `StdRng`, so results are *identical for every
///   thread count* — just not identical to `Sequential`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerMode {
    /// Pick per run: `Batched` when `threads > 1` **and** the instance
    /// has at least [`SamplerMode::AUTO_BATCH_MIN_TASKS`] tasks,
    /// `Sequential` otherwise. Parallel runs on instances big enough to
    /// amortise per-sample RNG setup get the fused pipeline; everything
    /// else keeps the legacy stream.
    #[default]
    Auto,
    /// Legacy driver-thread sampling; RNG-stream compatible with
    /// previous releases for any thread count.
    Sequential,
    /// Fused parallel sample+evaluate with per-sample derived RNGs and a
    /// flat reusable sample buffer; deterministic per seed and invariant
    /// across thread counts.
    Batched,
}

impl SamplerMode {
    /// Smallest instance (in tasks) for which `Auto` picks the batched
    /// pipeline on a multi-threaded run. Matches the CI bench gate
    /// (`match-bench --check`), which only asserts the batched pipeline
    /// beats sequential sampling for `n ≥ 32`; below that the per-sample
    /// RNG setup can dominate and the legacy stream is kept.
    pub const AUTO_BATCH_MIN_TASKS: usize = 32;

    /// Resolve `Auto` for a concrete thread count **and instance size**;
    /// never returns `Auto`. This is the single decision point shared by
    /// the CE matcher and FastMap-GA, so the two cannot silently diverge.
    ///
    /// An empty instance (`n_tasks == 0`) always resolves to
    /// `Sequential`: the batched pipeline needs at least one gene/row
    /// per sample, and the degenerate case is handled by the scalar
    /// drivers.
    pub fn resolved_for(self, threads: usize, n_tasks: usize) -> SamplerMode {
        if n_tasks == 0 {
            return SamplerMode::Sequential;
        }
        match self {
            SamplerMode::Auto => {
                if threads > 1 && n_tasks >= Self::AUTO_BATCH_MIN_TASKS {
                    SamplerMode::Batched
                } else {
                    SamplerMode::Sequential
                }
            }
            mode => mode,
        }
    }

    /// Resolve `Auto` by thread count alone, assuming a large instance.
    /// Prefer [`SamplerMode::resolved_for`] when the instance is known.
    pub fn resolved(self, threads: usize) -> SamplerMode {
        self.resolved_for(threads, usize::MAX)
    }
}

/// MaTCH tunables. Defaults are the paper's §4–§5 choices.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConfig {
    /// Focus parameter `ρ` (paper: `0.01 ≤ ρ ≤ 0.1`; experiments use the
    /// upper end for stable elite counts at small `N`).
    pub rho: f64,
    /// Smoothing factor `ζ` of Eq. 13 (paper: `0.3`).
    pub zeta: f64,
    /// Samples per iteration; `None` selects the paper's `N = 2|V_r|²`.
    pub sample_size: Option<usize>,
    /// Hard iteration cap (safety net).
    pub max_iters: usize,
    /// Stability window `c` of Eq. 12 (paper: `5`).
    pub stability_window: usize,
    /// Tolerance for "equal" row maxima in Eq. 12.
    pub stability_tol: f64,
    /// Consecutive-stability window for the elite threshold `γ`
    /// (Figure 2's rule; `0` disables). With smoothed updates this is
    /// the rule that fires in practice once the sampled population has
    /// collapsed onto one cost plateau.
    pub gamma_window: usize,
    /// Relative tolerance for "equal" γ values.
    pub gamma_tol: f64,
    /// Degenerate-matrix early stop tolerance.
    pub degeneracy_tol: f64,
    /// Worker threads for sample evaluation (`1` = sequential).
    pub threads: usize,
    /// How the sample batch is drawn — see [`SamplerMode`]. The default
    /// (`Auto`) keeps the historical RNG stream for single-threaded runs
    /// and for instances below [`SamplerMode::AUTO_BATCH_MIN_TASKS`]
    /// tasks, and switches larger multi-threaded runs to the fused
    /// batched pipeline, whose stream differs but is invariant across
    /// thread counts. Pin [`SamplerMode::Sequential`] to reproduce
    /// pre-batching results on any thread count.
    pub sampler: SamplerMode,
    /// Evaluation backend for the batched pipeline — see
    /// [`EvalBackend`]. Both backends are bit-identical (the lane
    /// kernel never reassociates a sample's terms), so this changes
    /// throughput only; `Auto` picks the lane kernel whenever a chunk
    /// is at least [`match_eval::LANES`] rows wide. Ignored by
    /// [`SamplerMode::Sequential`] runs, which score samples one at a
    /// time on the historical scalar path.
    pub backend: EvalBackend,
    /// Record a stochastic-matrix snapshot every `k` iterations
    /// (Figure 3); `None` disables snapshots.
    pub snapshot_every: Option<usize>,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            rho: 0.1,
            zeta: 0.3,
            sample_size: None,
            max_iters: 1000,
            stability_window: 5,
            stability_tol: 1e-4,
            gamma_window: 5,
            gamma_tol: 1e-12,
            degeneracy_tol: 1e-6,
            threads: match_par::default_threads(),
            sampler: SamplerMode::default(),
            backend: EvalBackend::default(),
            snapshot_every: None,
        }
    }
}

impl MatchConfig {
    /// Panic with a clear message on nonsensical settings. Called at the
    /// top of every solver entry point; mirrors
    /// [`CeConfig::validate`], plus the MaTCH-specific fields.
    pub fn validate(&self) {
        assert!(self.rho > 0.0 && self.rho <= 1.0, "rho must be in (0, 1]");
        if let Some(n) = self.sample_size {
            assert!(n >= 1, "need at least one sample");
        }
        assert!((0.0..=1.0).contains(&self.zeta), "zeta must be in [0, 1]");
        assert!(self.max_iters >= 1, "need at least one iteration");
        assert!(self.stability_window >= 1, "stability window >= 1");
        assert!(self.threads >= 1, "need at least one worker thread");
    }

    /// The paper's sample count for `n` resources: `N = 2n²` ("there are
    /// `|V_r|²` elements in the matrix and to evaluate each of them we
    /// need a sample size of that order", §4).
    pub fn effective_sample_size(&self, n: usize) -> usize {
        self.sample_size.unwrap_or((2 * n * n).max(4))
    }

    fn ce_config(&self, n: usize) -> CeConfig {
        CeConfig {
            rho: self.rho,
            sample_size: self.effective_sample_size(n),
            zeta: self.zeta,
            max_iters: self.max_iters,
            stability_window: self.stability_window,
            stability_tol: self.stability_tol,
            degeneracy_tol: self.degeneracy_tol,
            gamma_window: self.gamma_window,
            gamma_tol: self.gamma_tol,
        }
    }
}

/// A stochastic-matrix snapshot (Figure 3 raw material).
#[derive(Debug, Clone)]
pub struct MatrixSnapshot {
    /// Iteration index the snapshot was taken after.
    pub iter: usize,
    /// The matrix state.
    pub matrix: StochasticMatrix,
}

/// Everything a MaTCH run produces.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its execution time (Eq. 2).
    pub cost: f64,
    /// CE iterations executed.
    pub iterations: usize,
    /// Total objective evaluations.
    pub evaluations: u64,
    /// Wall-clock mapping time (the paper's MT).
    pub elapsed: Duration,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
    /// Per-iteration statistics (γ, best/mean cost, entropy).
    pub telemetry: CeTelemetry,
    /// Matrix snapshots, when enabled.
    pub snapshots: Vec<MatrixSnapshot>,
}

impl MatchOutcome {
    /// Convert to the heuristic-agnostic [`MapperOutcome`].
    pub fn into_mapper_outcome(self) -> MapperOutcome {
        MapperOutcome {
            mapping: self.mapping,
            cost: self.cost,
            evaluations: self.evaluations,
            iterations: self.iterations,
            elapsed: self.elapsed,
        }
    }
}

/// The MaTCH solver.
///
/// ```
/// use match_core::{MappingInstance, MatchConfig, Matcher};
/// use match_graph::gen::InstanceGenerator;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let pair = InstanceGenerator::paper_family(8).generate(&mut rng);
/// let inst = MappingInstance::from_pair(&pair);
///
/// let outcome = Matcher::new(MatchConfig::default()).run(&inst, &mut rng);
/// assert!(outcome.mapping.is_permutation());
/// assert_eq!(outcome.cost, match_core::exec_time(&inst, outcome.mapping.as_slice()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Matcher {
    config: MatchConfig,
}

impl Matcher {
    /// Build a solver with the given configuration.
    pub fn new(config: MatchConfig) -> Self {
        Matcher { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Run MaTCH on a square instance (bijective mappings via GenPerm).
    ///
    /// Panics when `|V_t| ≠ |V_r|` — use
    /// [`Matcher::run_many_to_one`] for rectangular instances.
    pub fn run(&self, inst: &MappingInstance, rng: &mut StdRng) -> MatchOutcome {
        self.run_traced(inst, rng, &mut NullRecorder)
    }

    /// [`Matcher::run`] with live telemetry: `run_start`/`run_end`
    /// bounds, per-iteration events with γ, `sample`/`evaluate`/`update`
    /// spans, and one pool event per parallel evaluation chunk.
    pub fn run_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MatchOutcome {
        self.config.validate();
        assert!(
            inst.is_square(),
            "MaTCH's GenPerm model needs |V_t| = |V_r| (got {} tasks, {} resources); \
             use run_many_to_one instead",
            inst.n_tasks(),
            inst.n_resources()
        );
        let n = inst.n_tasks();
        let mut model = PermutationModel::uniform(n);
        self.drive(
            inst,
            rng,
            &mut model,
            |m| m.matrix().clone(),
            recorder,
            &StopToken::never(),
        )
    }

    /// [`Matcher::run_traced`] with cooperative cancellation: `stop` is
    /// polled once per CE iteration; when it fires the run ends with
    /// [`StopReason::Cancelled`] and the best mapping found so far.
    pub fn run_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MatchOutcome {
        self.config.validate();
        assert!(
            inst.is_square(),
            "MaTCH's GenPerm model needs |V_t| = |V_r| (got {} tasks, {} resources); \
             use run_many_to_one instead",
            inst.n_tasks(),
            inst.n_resources()
        );
        let n = inst.n_tasks();
        let mut model = PermutationModel::uniform(n);
        self.drive(
            inst,
            rng,
            &mut model,
            |m| m.matrix().clone(),
            recorder,
            stop,
        )
    }

    /// [`Matcher::run_controlled`] warm-started from a persisted prior:
    /// the stochastic matrix is seeded as `α·prior + (1 − α)·uniform`
    /// instead of uniform, and the **converged** matrix is returned
    /// alongside the outcome so the caller can store it as the next
    /// near-duplicate request's prior.
    ///
    /// Cold-path contract: `α ≤ 0`, `prior = None`, or a prior whose
    /// shape does not match the instance all seed the exact uniform
    /// matrix ([`StochasticMatrix::warm_seed`] returns it bit-for-bit),
    /// so the trajectory is identical to [`Matcher::run_controlled`].
    pub fn run_warm_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
        prior: Option<&StochasticMatrix>,
        alpha: f64,
    ) -> (MatchOutcome, StochasticMatrix) {
        self.config.validate();
        assert!(
            inst.is_square(),
            "MaTCH's GenPerm model needs |V_t| = |V_r| (got {} tasks, {} resources); \
             use run_many_to_one instead",
            inst.n_tasks(),
            inst.n_resources()
        );
        let n = inst.n_tasks();
        let init = match prior {
            Some(p) if alpha > 0.0 && p.rows() == n && p.cols() == n => {
                StochasticMatrix::warm_seed(p, alpha)
            }
            _ => StochasticMatrix::uniform(n, n),
        };
        let mut model = PermutationModel::from_matrix(init);
        let outcome = self.drive(
            inst,
            rng,
            &mut model,
            |m| m.matrix().clone(),
            recorder,
            stop,
        );
        let converged = model.matrix().clone();
        (outcome, converged)
    }

    /// The many-to-one generalisation: rows are sampled independently
    /// (duplicates allowed), supporting `|V_t| ≠ |V_r|`. This is the
    /// "few simple modifications" §4 alludes to.
    pub fn run_many_to_one(&self, inst: &MappingInstance, rng: &mut StdRng) -> MatchOutcome {
        self.config.validate();
        let mut model = AssignmentModel::uniform(inst.n_tasks(), inst.n_resources());
        self.drive(
            inst,
            rng,
            &mut model,
            |m| m.matrix().clone(),
            &mut NullRecorder,
            &StopToken::never(),
        )
    }

    /// Ablation arm: the §4 "naive" formulation over `χ̃` — rows sampled
    /// independently with `S̃(x) = ∞` for non-bijective samples — on a
    /// square instance. Quantifies what GenPerm buys.
    pub fn run_naive_penalized(&self, inst: &MappingInstance, rng: &mut StdRng) -> MatchOutcome {
        self.config.validate();
        assert!(
            inst.is_square(),
            "the penalised ablation needs a square instance"
        );
        let n = inst.n_tasks();
        let mut model = AssignmentModel::uniform(n, n);
        let start = Instant::now();
        let cfg = self.config.ce_config(n);
        let threads = self.config.threads;
        let snapshots = std::cell::RefCell::new(Vec::new());
        let every = self.config.snapshot_every;
        let observe = |iter: usize, m: &AssignmentModel| {
            if let Some(k) = every {
                if iter.is_multiple_of(k.max(1)) {
                    snapshots.borrow_mut().push(MatrixSnapshot {
                        iter,
                        matrix: m.matrix().clone(),
                    });
                }
            }
        };
        let outcome = match self.config.sampler.resolved_for(threads, inst.n_tasks()) {
            SamplerMode::Batched => minimize_flat(
                &mut model,
                &cfg,
                rng,
                threads,
                |row: &[usize]| {
                    if match_rngutil::perm::is_permutation(row) {
                        exec_time(inst, row)
                    } else {
                        f64::INFINITY
                    }
                },
                observe,
                &mut NullRecorder,
                &|| false,
            ),
            _ => minimize_traced(
                &mut model,
                &cfg,
                rng,
                |samples: &[Vec<usize>], _recorder: &mut dyn Recorder| {
                    match_par::parallel_map(samples.len(), threads, |i| {
                        if match_rngutil::perm::is_permutation(&samples[i]) {
                            exec_time(inst, &samples[i])
                        } else {
                            f64::INFINITY
                        }
                    })
                },
                observe,
                &mut NullRecorder,
            ),
        };
        MatchOutcome {
            mapping: Mapping::new(outcome.best_sample),
            cost: outcome.best_cost,
            iterations: outcome.iterations,
            evaluations: outcome.evaluations,
            elapsed: start.elapsed(),
            stop_reason: outcome.stop_reason,
            telemetry: outcome.telemetry,
            snapshots: snapshots.into_inner(),
        }
    }

    /// The Wilhelm-style capacitated objective on a square instance:
    /// every sample is scored as `Exec(x) + γ·overflow(x)` (Eq. 2 plus
    /// the [`CapacityModel`](crate::capacity::CapacityModel) penalty),
    /// over the same GenPerm permutation model as [`Matcher::run`].
    ///
    /// With `γ = 0` the penalty term is exactly `0.0`, so the sampled
    /// objective values — and therefore elite selection — equal the
    /// plain Eq. 2 objective's bit for bit.
    pub fn run_capacitated(
        &self,
        inst: &MappingInstance,
        caps: &crate::capacity::CapacityModel,
        rng: &mut StdRng,
    ) -> MatchOutcome {
        self.run_capacitated_controlled(inst, caps, rng, &mut NullRecorder, &StopToken::never())
    }

    /// [`Matcher::run_capacitated`] with telemetry and cooperative
    /// cancellation.
    pub fn run_capacitated_controlled(
        &self,
        inst: &MappingInstance,
        caps: &crate::capacity::CapacityModel,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MatchOutcome {
        self.config.validate();
        caps.validate(inst);
        assert!(
            inst.is_square(),
            "the capacitated objective keeps GenPerm's bijective model \
             (got {} tasks, {} resources)",
            inst.n_tasks(),
            inst.n_resources()
        );
        let n = inst.n_tasks();
        let mut model = PermutationModel::uniform(n);
        let start = Instant::now();
        record_run_start(recorder, "MaTCH", inst);
        let cfg = self.config.ce_config(n);
        let threads = self.config.threads;
        let observe = |_: usize, _: &PermutationModel| {};
        let outcome = match self.config.sampler.resolved_for(threads, n) {
            SamplerMode::Batched => minimize_flat(
                &mut model,
                &cfg,
                rng,
                threads,
                |row: &[usize]| exec_time(inst, row) + caps.penalty(row),
                observe,
                recorder,
                &|| stop.should_stop(),
            ),
            _ => minimize_controlled(
                &mut model,
                &cfg,
                rng,
                |samples: &[Vec<usize>], _recorder: &mut dyn Recorder| {
                    match_par::parallel_map(samples.len(), threads, |i| {
                        exec_time(inst, &samples[i]) + caps.penalty(&samples[i])
                    })
                },
                observe,
                recorder,
                &|| stop.should_stop(),
            ),
        };
        let result = MatchOutcome {
            mapping: Mapping::new(outcome.best_sample),
            cost: outcome.best_cost,
            iterations: outcome.iterations,
            evaluations: outcome.evaluations,
            elapsed: start.elapsed(),
            stop_reason: outcome.stop_reason,
            telemetry: outcome.telemetry,
            snapshots: Vec::new(),
        };
        if recorder.enabled() {
            recorder.record(Event::RunEnd {
                best: result.cost,
                iterations: result.iterations as u64,
                evaluations: result.evaluations,
                wall_ns: result.elapsed.as_nanos() as u64,
            });
        }
        result
    }

    fn drive<M>(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        model: &mut M,
        snapshot: impl Fn(&M) -> StochasticMatrix,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MatchOutcome
    where
        M: FlatSampler,
    {
        let start = Instant::now();
        record_run_start(recorder, "MaTCH", inst);
        let cfg = self
            .config
            .ce_config(inst.n_resources().max(inst.n_tasks()));
        let threads = self.config.threads;
        let snapshots = std::cell::RefCell::new(Vec::new());
        let every = self.config.snapshot_every;
        let observe = |iter: usize, m: &M| {
            if let Some(k) = every {
                if iter.is_multiple_of(k.max(1)) {
                    snapshots.borrow_mut().push(MatrixSnapshot {
                        iter,
                        matrix: snapshot(m),
                    });
                }
            }
        };
        let outcome = match self.config.sampler.resolved_for(threads, inst.n_tasks()) {
            SamplerMode::Batched => minimize_flat_with(
                model,
                &cfg,
                rng,
                threads,
                &PlanEvaluator::new(inst, self.config.backend),
                observe,
                recorder,
                &|| stop.should_stop(),
            ),
            _ => {
                // The evaluate closure runs once per CE iteration, in
                // order; the counter turns that into the iteration index
                // for pool events.
                let eval_round = Cell::new(0u64);
                minimize_controlled(
                    model,
                    &cfg,
                    rng,
                    |samples: &[Vec<usize>], recorder: &mut dyn Recorder| {
                        let iter = eval_round.replace(eval_round.get() + 1);
                        if recorder.enabled() {
                            let (costs, timings) =
                                match_par::parallel_map_timed(samples.len(), threads, |i| {
                                    exec_time(inst, &samples[i])
                                });
                            for t in timings {
                                recorder.record(Event::Pool(PoolEvent {
                                    iter,
                                    chunk: t.chunk,
                                    len: t.len,
                                    wall_ns: t.wall_ns,
                                }));
                            }
                            costs
                        } else {
                            match_par::parallel_map(samples.len(), threads, |i| {
                                exec_time(inst, &samples[i])
                            })
                        }
                    },
                    observe,
                    recorder,
                    &|| stop.should_stop(),
                )
            }
        };
        let result = MatchOutcome {
            mapping: Mapping::new(outcome.best_sample),
            cost: outcome.best_cost,
            iterations: outcome.iterations,
            evaluations: outcome.evaluations,
            elapsed: start.elapsed(),
            stop_reason: outcome.stop_reason,
            telemetry: outcome.telemetry,
            snapshots: snapshots.into_inner(),
        };
        if recorder.enabled() {
            recorder.record(Event::RunEnd {
                best: result.cost,
                iterations: result.iterations as u64,
                evaluations: result.evaluations,
                wall_ns: result.elapsed.as_nanos() as u64,
            });
        }
        result
    }
}

impl Mapper for Matcher {
    fn name(&self) -> &str {
        "MaTCH"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.run(inst, rng).into_mapper_outcome()
    }

    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.run_traced(inst, rng, recorder).into_mapper_outcome()
    }

    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.run_controlled(inst, rng, recorder, stop)
            .into_mapper_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::exec_time;
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::perm::random_permutation;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    fn small_config() -> MatchConfig {
        MatchConfig {
            threads: 1,
            ..MatchConfig::default()
        }
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn invalid_rho_panics() {
        let inst = instance(5, 40);
        let cfg = MatchConfig {
            rho: 1.5,
            ..small_config()
        };
        Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(41));
    }

    #[test]
    #[should_panic(expected = "zeta must be in [0, 1]")]
    fn invalid_zeta_panics() {
        let inst = instance(5, 40);
        let cfg = MatchConfig {
            zeta: -0.1,
            ..small_config()
        };
        Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(41));
    }

    #[test]
    #[should_panic(expected = "need at least one worker thread")]
    fn zero_threads_panics() {
        let inst = instance(5, 40);
        let cfg = MatchConfig {
            threads: 0,
            ..MatchConfig::default()
        };
        Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(41));
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn zero_sample_size_panics() {
        let inst = instance(5, 40);
        let cfg = MatchConfig {
            sample_size: Some(0),
            ..small_config()
        };
        Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(41));
    }

    #[test]
    fn produces_valid_permutation_mapping() {
        let inst = instance(10, 1);
        let out = Matcher::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
        assert!(out.iterations >= 1);
        assert!(out.evaluations >= 200); // at least one iteration of 2·10²
    }

    #[test]
    fn beats_random_sampling() {
        let inst = instance(12, 3);
        let mut rng = StdRng::seed_from_u64(4);
        // 500 random permutations as the no-intelligence yardstick.
        let mut acc = 0.0;
        let mut best_random = f64::INFINITY;
        for _ in 0..500 {
            let c = exec_time(&inst, &random_permutation(12, &mut rng));
            acc += c;
            best_random = best_random.min(c);
        }
        let random_mean = acc / 500.0;
        let out = Matcher::new(small_config()).run(&inst, &mut rng);
        assert!(
            out.cost < best_random,
            "MaTCH {} vs best-of-500 random {best_random}",
            out.cost
        );
        assert!(
            out.cost < 0.8 * random_mean,
            "MaTCH {} vs random mean {random_mean}",
            out.cost
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(8, 5);
        let m = Matcher::new(small_config());
        let a = m.run(&inst, &mut StdRng::seed_from_u64(6));
        let b = m.run(&inst, &mut StdRng::seed_from_u64(6));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_evaluation_same_results_as_sequential() {
        // In Sequential mode the thread count must not change the
        // optimisation trajectory: sampling happens on the driver
        // thread; only evaluation fans out.
        let inst = instance(9, 7);
        let seq = Matcher::new(MatchConfig {
            threads: 1,
            sampler: SamplerMode::Sequential,
            ..MatchConfig::default()
        })
        .run(&inst, &mut StdRng::seed_from_u64(8));
        let par = Matcher::new(MatchConfig {
            threads: 4,
            sampler: SamplerMode::Sequential,
            ..MatchConfig::default()
        })
        .run(&inst, &mut StdRng::seed_from_u64(8));
        assert_eq!(seq.mapping, par.mapping);
        assert_eq!(seq.cost, par.cost);
        assert_eq!(seq.iterations, par.iterations);
    }

    #[test]
    fn batched_mode_is_thread_count_invariant() {
        // The fused pipeline derives one RNG per sample from a single
        // iteration seed, so the whole MatchOutcome is bit-identical for
        // any thread count — including 1.
        let inst = instance(9, 7);
        let run = |threads: usize| {
            Matcher::new(MatchConfig {
                threads,
                sampler: SamplerMode::Batched,
                ..MatchConfig::default()
            })
            .run(&inst, &mut StdRng::seed_from_u64(8))
        };
        let one = run(1);
        for threads in [2, 8] {
            let other = run(threads);
            assert_eq!(one.mapping, other.mapping, "threads={threads}");
            assert_eq!(one.cost, other.cost, "threads={threads}");
            assert_eq!(one.iterations, other.iterations, "threads={threads}");
            assert_eq!(
                one.telemetry.iters, other.telemetry.iters,
                "threads={threads}"
            );
        }
        assert!(one.mapping.is_permutation());
        assert_eq!(one.cost, exec_time(&inst, one.mapping.as_slice()));
    }

    #[test]
    fn eval_backends_produce_identical_batched_runs() {
        // The lane kernel never reassociates a sample's terms, so
        // forcing Scalar, Simd, or Auto must give the same trajectory
        // bit for bit — on any thread count.
        let inst = instance(12, 7);
        let run = |backend: EvalBackend, threads: usize| {
            Matcher::new(MatchConfig {
                threads,
                sampler: SamplerMode::Batched,
                backend,
                ..MatchConfig::default()
            })
            .run(&inst, &mut StdRng::seed_from_u64(8))
        };
        let base = run(EvalBackend::Scalar, 1);
        for backend in [EvalBackend::Simd, EvalBackend::Auto] {
            for threads in [1, 2, 8] {
                let other = run(backend, threads);
                assert_eq!(base.mapping, other.mapping, "{backend} threads={threads}");
                assert_eq!(
                    base.cost.to_bits(),
                    other.cost.to_bits(),
                    "{backend} threads={threads}"
                );
                assert_eq!(
                    base.iterations, other.iterations,
                    "{backend} threads={threads}"
                );
                assert_eq!(
                    base.telemetry.iters, other.telemetry.iters,
                    "{backend} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn auto_sampler_resolution() {
        assert_eq!(SamplerMode::Auto.resolved(1), SamplerMode::Sequential);
        assert_eq!(SamplerMode::Auto.resolved(8), SamplerMode::Batched);
        assert_eq!(SamplerMode::Sequential.resolved(8), SamplerMode::Sequential);
        assert_eq!(SamplerMode::Batched.resolved(1), SamplerMode::Batched);
    }

    #[test]
    fn auto_batch_cutover_is_pinned() {
        // The Auto→Batched cutover is a shared contract between the CE
        // matcher and FastMap-GA: multi-threaded runs switch to the
        // batched pipeline exactly at AUTO_BATCH_MIN_TASKS tasks.
        let cut = SamplerMode::AUTO_BATCH_MIN_TASKS;
        assert_eq!(cut, 32, "cutover must match the CI bench gate (n >= 32)");
        assert_eq!(
            SamplerMode::Auto.resolved_for(8, cut - 1),
            SamplerMode::Sequential
        );
        assert_eq!(SamplerMode::Auto.resolved_for(8, cut), SamplerMode::Batched);
        assert_eq!(SamplerMode::Auto.resolved_for(2, cut), SamplerMode::Batched);
        // Single-threaded runs never switch, however large the instance.
        assert_eq!(
            SamplerMode::Auto.resolved_for(1, 10 * cut),
            SamplerMode::Sequential
        );
        // Pinned modes resolve to themselves on any non-empty instance.
        assert_eq!(
            SamplerMode::Sequential.resolved_for(8, 10 * cut),
            SamplerMode::Sequential
        );
        assert_eq!(
            SamplerMode::Batched.resolved_for(1, 1),
            SamplerMode::Batched
        );
        // The empty instance always takes the scalar (sequential) path.
        assert_eq!(
            SamplerMode::Batched.resolved_for(8, 0),
            SamplerMode::Sequential
        );
        assert_eq!(
            SamplerMode::Auto.resolved_for(8, 0),
            SamplerMode::Sequential
        );
    }

    #[test]
    fn batched_naive_penalized_still_finds_permutations() {
        let inst = instance(6, 15);
        let cfg = MatchConfig {
            sample_size: Some(400),
            threads: 2,
            sampler: SamplerMode::Batched,
            ..MatchConfig::default()
        };
        let out = Matcher::new(cfg).run_naive_penalized(&inst, &mut StdRng::seed_from_u64(16));
        assert!(out.cost.is_finite(), "never found a bijection");
        assert!(out.mapping.is_permutation());
    }

    #[test]
    fn sample_size_default_is_2n_squared() {
        let cfg = MatchConfig::default();
        assert_eq!(cfg.effective_sample_size(10), 200);
        assert_eq!(cfg.effective_sample_size(50), 5000);
        let cfg = MatchConfig {
            sample_size: Some(64),
            ..MatchConfig::default()
        };
        assert_eq!(cfg.effective_sample_size(10), 64);
    }

    #[test]
    fn snapshots_recorded_when_enabled() {
        let inst = instance(8, 9);
        let cfg = MatchConfig {
            snapshot_every: Some(1),
            threads: 1,
            ..MatchConfig::default()
        };
        let out = Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(10));
        assert_eq!(out.snapshots.len(), out.iterations);
        // First snapshot is post-first-update; last should be far more
        // concentrated than the first.
        let first = &out.snapshots.first().unwrap().matrix;
        let last = &out.snapshots.last().unwrap().matrix;
        assert!(last.mean_entropy() < first.mean_entropy());
    }

    #[test]
    fn telemetry_gamma_improves() {
        let inst = instance(10, 11);
        let out = Matcher::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(12));
        let first = out.telemetry.iters.first().unwrap().gamma;
        let last = out.telemetry.iters.last().unwrap().gamma;
        assert!(last < first, "gamma {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "GenPerm")]
    fn square_run_rejects_rectangular_instance() {
        use match_graph::gen::paper::PaperFamilyConfig;
        use match_graph::InstancePair;
        let mut rng = StdRng::seed_from_u64(13);
        let tig = PaperFamilyConfig::new(6).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        Matcher::new(small_config()).run(&inst, &mut rng);
    }

    #[test]
    fn many_to_one_maps_rectangular_instance() {
        use match_graph::gen::paper::PaperFamilyConfig;
        use match_graph::InstancePair;
        let mut rng = StdRng::seed_from_u64(14);
        let tig = PaperFamilyConfig::new(12).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let cfg = MatchConfig {
            sample_size: Some(200),
            threads: 1,
            ..MatchConfig::default()
        };
        let out = Matcher::new(cfg).run_many_to_one(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert_eq!(out.mapping.len(), 12);
        assert!(out.mapping.as_slice().iter().all(|&r| r < 4));
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn naive_penalized_still_finds_permutations() {
        let inst = instance(6, 15);
        let cfg = MatchConfig {
            sample_size: Some(400),
            threads: 1,
            ..MatchConfig::default()
        };
        let out = Matcher::new(cfg).run_naive_penalized(&inst, &mut StdRng::seed_from_u64(16));
        assert!(out.cost.is_finite(), "never found a bijection");
        assert!(out.mapping.is_permutation());
    }

    #[test]
    fn capacitated_run_respects_gamma() {
        use crate::capacity::CapacityModel;
        let inst = instance(8, 30);
        // Tight capacities: only a near-balanced mapping fits.
        let caps = CapacityModel {
            mem_demand: vec![4.0; 8],
            mem_capacity: vec![5.0; 8],
            bw_demand: vec![1.0; 8],
            bw_capacity: vec![8.0; 8],
            gamma: 0.0,
        };
        let cfg = MatchConfig {
            max_iters: 30,
            threads: 1,
            ..MatchConfig::default()
        };
        let m = Matcher::new(cfg);
        // gamma = 0 is exactly the plain objective: the reported cost is
        // a pure Eq. 2 value for the returned permutation.
        let free = m.run_capacitated(&inst, &caps, &mut StdRng::seed_from_u64(31));
        assert!(free.mapping.is_permutation());
        assert_eq!(
            free.cost.to_bits(),
            exec_time(&inst, free.mapping.as_slice()).to_bits()
        );
        // A positive gamma folds the overflow penalty into the sampled
        // objective; a permutation never overflows these per-task-equal
        // demands, so the reported cost still satisfies Eq. 2.
        let caps_hot = CapacityModel {
            gamma: 100.0,
            ..caps
        };
        let hot = m.run_capacitated(&inst, &caps_hot, &mut StdRng::seed_from_u64(31));
        assert!(hot.mapping.is_permutation());
        assert_eq!(caps_hot.overflow(hot.mapping.as_slice()), 0.0);
    }

    #[test]
    fn genperm_beats_naive_on_equal_budget() {
        // The paper's motivation for GenPerm: restricted sampling wastes
        // no samples on invalid mappings.
        let inst = instance(8, 17);
        let cfg = MatchConfig {
            sample_size: Some(128),
            max_iters: 30,
            threads: 1,
            ..MatchConfig::default()
        };
        let m = Matcher::new(cfg);
        let gen = m.run(&inst, &mut StdRng::seed_from_u64(18));
        let naive = m.run_naive_penalized(&inst, &mut StdRng::seed_from_u64(18));
        assert!(
            gen.cost <= naive.cost,
            "GenPerm {} vs naive {}",
            gen.cost,
            naive.cost
        );
    }

    #[test]
    fn mu_stability_rule_fires_with_coarse_updates() {
        // The paper's own configuration of Eq. 12: coarse updates
        // (zeta = 1) drive row maxima to exact fixpoints, so with the
        // gamma rule disabled the MuStable (or degenerate) path stops
        // the run well before max_iters.
        let inst = instance(8, 21);
        let cfg = MatchConfig {
            zeta: 1.0,
            gamma_window: 0,
            stability_tol: 1e-9,
            threads: 1,
            ..MatchConfig::default()
        };
        let out = Matcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(22));
        assert!(
            matches!(
                out.stop_reason,
                match_ce::driver::StopReason::MuStable | match_ce::driver::StopReason::Degenerate
            ),
            "stopped via {:?}",
            out.stop_reason
        );
        assert!(out.iterations < 1000);
        assert!(out.mapping.is_permutation());
    }

    #[test]
    fn into_mapper_outcome_preserves_fields() {
        let inst = instance(6, 23);
        let out = Matcher::new(small_config()).run(&inst, &mut StdRng::seed_from_u64(24));
        let (cost, evals, iters, mapping) = (
            out.cost,
            out.evaluations,
            out.iterations,
            out.mapping.clone(),
        );
        let mo = out.into_mapper_outcome();
        assert_eq!(mo.cost, cost);
        assert_eq!(mo.evaluations, evals);
        assert_eq!(mo.iterations, iters);
        assert_eq!(mo.mapping, mapping);
    }

    #[test]
    fn tripped_stop_flag_cancels_after_one_iteration() {
        use crate::control::StopFlag;
        use match_telemetry::NullRecorder;
        let inst = instance(10, 25);
        let flag = StopFlag::new();
        flag.trip();
        let out = Matcher::new(small_config()).run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(26),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.iterations, 1);
        assert_eq!(out.stop_reason, StopReason::Cancelled);
        // The truncated outcome is still a valid bijective mapping.
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn controlled_run_with_never_token_matches_plain_run() {
        use match_telemetry::NullRecorder;
        let inst = instance(8, 27);
        let m = Matcher::new(small_config());
        let plain = m.run(&inst, &mut StdRng::seed_from_u64(28));
        let controlled = m.run_controlled(
            &inst,
            &mut StdRng::seed_from_u64(28),
            &mut NullRecorder,
            &StopToken::never(),
        );
        assert_eq!(plain.mapping, controlled.mapping);
        assert_eq!(plain.cost, controlled.cost);
        assert_eq!(plain.iterations, controlled.iterations);
    }

    #[test]
    fn mapper_trait_delegates() {
        let inst = instance(8, 19);
        let m = Matcher::new(small_config());
        assert_eq!(m.name(), "MaTCH");
        let out = m.map(&inst, &mut StdRng::seed_from_u64(20));
        assert!(out.mapping.is_permutation());
        assert!(out.elapsed.as_nanos() > 0);
    }
}
