//! `match-core` — the MaTCH heuristic and the heterogeneous mapping
//! problem it solves.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`problem`] — [`MappingInstance`]: a TIG/platform pair flattened
//!   into dense cost tables (`W^t`, `w_s`, `C^{t,a}`, `c_{s,b}`).
//! * [`mapping`] — [`Mapping`]: a task→resource assignment vector.
//! * [`cost`] — the execution-time model: Eq. 1 (per-resource time) and
//!   Eq. 2 (application makespan), plus O(degree) incremental deltas for
//!   move/swap neighbourhoods (used by the local-search baselines).
//! * [`matcher`] — [`Matcher`]: the MaTCH algorithm of Figure 5 — CE over
//!   the GenPerm permutation model with smoothed updates (Eq. 13) and the
//!   μ-stability stopping rule (Eq. 12); sample evaluation is fanned out
//!   through `match-par`.
//! * [`mapper`] — the [`Mapper`] trait every heuristic in the workspace
//!   implements (MaTCH, FastMap-GA, the baselines), so the harness can
//!   treat them uniformly.
//!
//! The paper restricts experiments to `|V_t| = |V_r|` with bijective
//! mappings; [`Matcher::run_many_to_one`] provides the "few simple
//! modifications" generalisation over the independent-row assignment
//! model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcheval;
pub mod capacity;
pub mod control;
pub mod cost;
pub mod islands;
pub mod mapper;
pub mod mapping;
pub mod matcher;
pub mod multilevel_config;
pub mod problem;
pub mod quality;
pub mod remap;

pub use batcheval::{build_plan, PlanEvaluator};
pub use capacity::CapacityModel;
pub use control::{StopFlag, StopToken};
pub use cost::{
    apply_move_delta, apply_swap_delta, exec_per_resource, exec_per_resource_into, exec_time,
    exec_time_with, CostModel, IncrementalCost,
};
pub use islands::{IslandConfig, IslandMatcher};
pub use mapper::{record_run_end, record_run_start, Mapper, MapperOutcome};
pub use mapping::Mapping;
pub use match_eval::EvalBackend;
pub use matcher::{MatchConfig, MatchOutcome, Matcher, SamplerMode};
pub use multilevel_config::MultilevelConfig;
pub use problem::MappingInstance;
pub use quality::{analyze, bijective_lower_bound, lower_bound, MappingQuality};
pub use remap::{remap, remap_incremental, RemapConfig, RemapOutcome, RemapStrategy};
