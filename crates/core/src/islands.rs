//! Island-parallel MaTCH — the paper's future work, realised.
//!
//! The conclusion sketches "extending MaTCH into a fully distributed
//! implementation using agent based scheduling" to attack the CE
//! method's main weakness, its mapping time. This module implements the
//! shared-memory analogue: `k` *islands* each run an independent MaTCH
//! instance (own stochastic matrix, own RNG stream) on one thread;
//! every `migration_interval` iterations the islands exchange their
//! best mappings and inject the global incumbent into each island's
//! elite pool, coupling the searches the way migrating agents would.
//!
//! Islands communicate over `crossbeam` channels, mirroring a
//! message-passing deployment; determinism is preserved because
//! migration happens at fixed iteration boundaries (a barrier), not
//! wall-clock times.

use crate::cost::exec_time;
use crate::mapper::{record_run_end, record_run_start, Mapper, MapperOutcome};
use crate::mapping::Mapping;
use crate::matcher::MatchConfig;
use crate::problem::MappingInstance;
use match_ce::batch::{FlatBatch, FlatSampler};
use match_ce::driver::select_elites;
use match_ce::model::CeModel;
use match_ce::models::permutation::PermutationModel;
use match_rngutil::seed::derive_seed;
use match_telemetry::{Event, IterEvent, MemoryRecorder, NullRecorder, Recorder, Span, SpanEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the island solver.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandConfig {
    /// Number of islands (each gets one thread).
    pub islands: usize,
    /// CE iterations between migrations (the barrier period).
    pub migration_interval: usize,
    /// Per-island MaTCH parameters. The per-island sample size defaults
    /// to `2|V|²/islands`, keeping the *total* per-iteration budget
    /// equal to sequential MaTCH's.
    pub base: MatchConfig,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            islands: match_par::default_threads().clamp(2, 8),
            migration_interval: 5,
            base: MatchConfig {
                threads: 1, // islands are the parallelism
                ..MatchConfig::default()
            },
        }
    }
}

/// The island-parallel MaTCH solver.
#[derive(Debug, Clone, Default)]
pub struct IslandMatcher {
    config: IslandConfig,
}

/// One island's working state.
struct Island {
    model: PermutationModel,
    rng: StdRng,
    best: Option<(Vec<usize>, f64)>,
    stable: usize,
    prev_gamma: Option<f64>,
    done: bool,
    iterations: usize,
    evaluations: u64,
}

impl IslandMatcher {
    /// Build with a configuration.
    pub fn new(config: IslandConfig) -> Self {
        assert!(config.islands >= 1, "need at least one island");
        assert!(config.migration_interval >= 1, "migration interval >= 1");
        IslandMatcher { config }
    }

    /// The configuration.
    pub fn config(&self) -> &IslandConfig {
        &self.config
    }

    /// Run on a square instance. The caller's RNG seeds the island
    /// streams, so results are deterministic per seed (and per island
    /// count).
    pub fn run(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.run_traced(inst, rng, &mut NullRecorder)
    }

    /// [`IslandMatcher::run`] with live telemetry. Islands advance in
    /// parallel, so events are recorded at the round barriers on the
    /// coordinating thread: one `round` span per parallel phase, one
    /// `migrate` span per migration, and one per-round `iter` event
    /// (`elite_size` reports the number of still-active islands).
    /// Each island additionally records into its own [`MemoryRecorder`]
    /// while its thread runs — an `island-<i>` span per round it
    /// advanced — and those buffers are drained into the caller's
    /// recorder at the migration barrier in island order, so the merged
    /// stream is deterministic and per-island load imbalance shows up
    /// in the report's phase breakdown.
    pub fn run_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.config.base.validate();
        assert!(self.config.islands >= 1, "need at least one island");
        assert!(
            self.config.migration_interval >= 1,
            "migration interval >= 1"
        );
        assert!(inst.is_square(), "island MaTCH needs |V_t| = |V_r|");
        record_run_start(recorder, "MaTCH-islands", inst);
        let start = std::time::Instant::now();
        let n = inst.n_tasks();
        let k = self.config.islands;
        let total_n = self.config.base.effective_sample_size(n);
        let per_island_n = (total_n / k).max(4);
        let rho = self.config.base.rho;
        let zeta = self.config.base.zeta;
        let elite_target = ((rho * per_island_n as f64).floor() as usize).max(1);
        let max_rounds = self
            .config
            .base
            .max_iters
            .div_ceil(self.config.migration_interval);
        let master: u64 = rng.random();

        let mut islands: Vec<Island> = (0..k)
            .map(|i| Island {
                model: PermutationModel::uniform(n),
                rng: StdRng::seed_from_u64(derive_seed(master, i as u64)),
                best: None,
                stable: 0,
                prev_gamma: None,
                done: false,
                iterations: 0,
                evaluations: 0,
            })
            .collect();

        let gamma_window = self.config.base.gamma_window.max(1);
        let interval = self.config.migration_interval;
        // One private recorder per island: threads record concurrently
        // without sharing the caller's sink, and the barrier merges the
        // buffers in island order so the trace stays deterministic.
        let mut island_recs: Vec<MemoryRecorder> = (0..k).map(|_| MemoryRecorder::new()).collect();

        for round in 0..max_rounds {
            let traced = recorder.enabled();
            let round_start = traced.then(std::time::Instant::now);
            let round_span = traced.then(|| Span::start("round", round as u64));
            // Parallel phase: each island advances `interval` iterations,
            // drawing its batch through the allocation-free flat pipeline
            // (alias tables rebuilt once per iteration, one reused
            // `per_island_n × n` buffer) and selecting elites in O(N).
            crossbeam::thread::scope(|scope| {
                for (i, (island, rec)) in islands.iter_mut().zip(island_recs.iter_mut()).enumerate()
                {
                    scope.spawn(move |_| {
                        if island.done {
                            return;
                        }
                        let island_start = traced.then(std::time::Instant::now);
                        let mut tables = island.model.new_tables();
                        let mut scratch = island.model.new_scratch();
                        let mut data = vec![0usize; per_island_n * n];
                        let mut costs = vec![0.0f64; per_island_n];
                        let mut round_evals = 0u64;
                        for _ in 0..interval {
                            island.model.fill_tables(&mut tables);
                            for i in 0..per_island_n {
                                let row = &mut data[i * n..(i + 1) * n];
                                island.model.sample_flat(
                                    &tables,
                                    &mut scratch,
                                    &mut island.rng,
                                    row,
                                );
                                costs[i] = exec_time(inst, row);
                            }
                            island.evaluations += per_island_n as u64;
                            round_evals += per_island_n as u64;
                            island.iterations += 1;

                            let selection = select_elites(&costs, elite_target);
                            let gamma = selection.gamma;
                            let first = selection.best;
                            if island.best.as_ref().is_none_or(|&(_, c)| costs[first] < c) {
                                island.best =
                                    Some((data[first * n..(first + 1) * n].to_vec(), costs[first]));
                            }
                            island.model.update_from_flat(
                                &FlatBatch::new(n, &data),
                                &selection.elites,
                                zeta,
                            );

                            // Per-island γ-stability stopping.
                            if let Some(pg) = island.prev_gamma {
                                if (pg - gamma).abs() <= 1e-12 * (1.0 + pg.abs()) {
                                    island.stable += 1;
                                } else {
                                    island.stable = 0;
                                }
                            }
                            island.prev_gamma = Some(gamma);
                            if island.stable >= gamma_window || island.model.is_degenerate(1e-6) {
                                island.done = true;
                                break;
                            }
                        }
                        if let Some(t0) = island_start {
                            rec.record(Event::Span(SpanEvent {
                                name: format!("island-{i}").into(),
                                iter: round as u64,
                                wall_ns: t0.elapsed().as_nanos() as u64,
                            }));
                        }
                        if traced && round_evals > 0 {
                            // Merged at the barrier like the spans, so a
                            // live metrics bridge sees island evaluations
                            // as they complete each round.
                            rec.record(Event::Counter {
                                name: "island.evaluations".into(),
                                value: round_evals,
                            });
                        }
                    });
                }
            })
            .expect("island thread panicked");
            if let Some(span) = round_span {
                span.finish(recorder);
            }
            // Merge the islands' private event buffers, in island order.
            if traced {
                for rec in island_recs.iter_mut() {
                    for event in std::mem::take(rec).into_events() {
                        recorder.record(event);
                    }
                }
            }

            // Migration barrier: broadcast the global incumbent into
            // every island's matrix (as a single-elite smoothed update —
            // the "migrant" reinforces its mapping's entries).
            let migrate_span = traced.then(|| Span::start("migrate", round as u64));
            let global_best = islands
                .iter()
                .filter_map(|i| i.best.clone())
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((assign, _)) = &global_best {
                for island in islands.iter_mut() {
                    if !island.done {
                        island
                            .model
                            .update_from_elites(std::slice::from_ref(assign), zeta * 0.5);
                    }
                }
                if traced {
                    recorder.record(Event::Counter {
                        name: "migrations".into(),
                        value: 1,
                    });
                }
            }
            if let Some(span) = migrate_span {
                span.finish(recorder);
            }
            if traced {
                let bests: Vec<f64> = islands
                    .iter()
                    .filter_map(|i| i.best.as_ref().map(|b| b.1))
                    .collect();
                let best = global_best.as_ref().map(|b| b.1).unwrap_or(f64::INFINITY);
                let mean = if bests.is_empty() {
                    best
                } else {
                    bests.iter().sum::<f64>() / bests.len() as f64
                };
                let active = islands.iter().filter(|i| !i.done).count();
                recorder.record(Event::Iter(IterEvent {
                    iter: round as u64,
                    best,
                    mean,
                    gamma: None,
                    elite_size: active as u64,
                    wall_ns: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                }));
            }
            if islands.iter().all(|i| i.done) {
                break;
            }
        }

        let (assign, cost) = islands
            .iter()
            .filter_map(|i| i.best.clone())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one island produced a sample");
        let outcome = MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: islands.iter().map(|i| i.evaluations).sum(),
            iterations: islands.iter().map(|i| i.iterations).max().unwrap_or(0),
            elapsed: start.elapsed(),
        };
        record_run_end(recorder, &outcome);
        outcome
    }
}

impl Mapper for IslandMatcher {
    fn name(&self) -> &str {
        "MaTCH-islands"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.run(inst, rng)
    }

    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.run_traced(inst, rng, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    #[should_panic(expected = "need at least one island")]
    fn zero_islands_panics() {
        IslandMatcher::new(IslandConfig {
            islands: 0,
            ..IslandConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn invalid_base_config_panics() {
        let inst = instance(6, 50);
        let mut cfg = IslandConfig::default();
        cfg.base.rho = 0.0;
        // Construction only checks island shape; the CE settings are
        // validated at the solve entry point.
        let m = IslandMatcher { config: cfg };
        m.run(&inst, &mut StdRng::seed_from_u64(51));
    }

    #[test]
    fn produces_valid_mapping() {
        let inst = instance(12, 1);
        let out = IslandMatcher::default().run(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
        assert!(out.evaluations > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance(10, 3);
        let m = IslandMatcher::new(IslandConfig {
            islands: 3,
            ..IslandConfig::default()
        });
        let a = m.run(&inst, &mut StdRng::seed_from_u64(4));
        let b = m.run(&inst, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn quality_comparable_to_sequential_matcher() {
        let inst = instance(12, 5);
        let seq = crate::Matcher::default().run(&inst, &mut StdRng::seed_from_u64(6));
        let isl = IslandMatcher::default().run(&inst, &mut StdRng::seed_from_u64(6));
        // Islands split the same total budget; allow a modest gap either way.
        assert!(
            isl.cost <= 1.15 * seq.cost,
            "islands {} vs sequential {}",
            isl.cost,
            seq.cost
        );
    }

    #[test]
    fn single_island_reduces_to_plain_ce() {
        let inst = instance(8, 7);
        let m = IslandMatcher::new(IslandConfig {
            islands: 1,
            migration_interval: 3,
            ..IslandConfig::default()
        });
        let out = m.run(&inst, &mut StdRng::seed_from_u64(8));
        assert!(out.mapping.is_permutation());
        assert!(out.cost.is_finite());
    }

    #[test]
    fn respects_total_budget_split() {
        let inst = instance(10, 9);
        let cfg = IslandConfig {
            islands: 4,
            migration_interval: 2,
            base: MatchConfig {
                max_iters: 8,
                ..MatchConfig::default()
            },
        };
        let out = IslandMatcher::new(cfg).run(&inst, &mut StdRng::seed_from_u64(10));
        // 4 islands × ≤8 iterations × (200/4) samples = ≤1600 evals.
        assert!(out.evaluations <= 1600, "evals {}", out.evaluations);
        assert!(out.iterations <= 8);
    }

    #[test]
    fn trace_merges_per_island_spans() {
        let inst = instance(10, 13);
        let m = IslandMatcher::new(IslandConfig {
            islands: 2,
            ..IslandConfig::default()
        });
        let mut rec = MemoryRecorder::new();
        let out = m.run_traced(&inst, &mut StdRng::seed_from_u64(14), &mut rec);
        assert!(out.mapping.is_permutation());
        // Every island that advanced recorded one span per round into
        // its private buffer; the barrier merged them into ours.
        assert!(rec.span_total_ns("island-0") > 0);
        assert!(rec.span_total_ns("island-1") > 0);
    }

    #[test]
    fn tracing_does_not_perturb_search() {
        let inst = instance(10, 15);
        let m = IslandMatcher::new(IslandConfig {
            islands: 3,
            ..IslandConfig::default()
        });
        let plain = m.run(&inst, &mut StdRng::seed_from_u64(16));
        let mut rec = MemoryRecorder::new();
        let traced = m.run_traced(&inst, &mut StdRng::seed_from_u64(16), &mut rec);
        assert_eq!(plain.mapping, traced.mapping);
        assert_eq!(plain.cost, traced.cost);
    }

    #[test]
    fn mapper_trait() {
        let inst = instance(8, 11);
        let m = IslandMatcher::default();
        assert_eq!(m.name(), "MaTCH-islands");
        let out = m.map(&inst, &mut StdRng::seed_from_u64(12));
        assert!(out.mapping.is_permutation());
    }
}
