//! The execution-time cost model (paper Eq. 1 and Eq. 2).
//!
//! For a mapping `M`, resource `s` spends
//!
//! ```text
//! Exec_s = Σ_{t: M(t)=s} W^t·w_s                         (processing)
//!        + Σ_{t: M(t)=s} Σ_{a ∈ N(t), M(a)=b ≠ s} C^{t,a}·c_{s,b}   (communication)
//! ```
//!
//! and the application execution time is `Exec = max_s Exec_s`. Tasks
//! co-located with a neighbour exchange data for free (`b = s` terms are
//! skipped), which is exactly why mapping quality matters.
//!
//! [`IncrementalCost`] maintains the per-resource loads under task moves
//! and swaps in O(degree) per operation — the delta evaluation that makes
//! the local-search baselines (hill climbing, simulated annealing)
//! competitive in evaluation count with MaTCH.

use crate::problem::MappingInstance;

/// Per-resource execution times (Eq. 1) written into `loads`
/// (resized/overwritten).
pub fn exec_per_resource_into(inst: &MappingInstance, assign: &[usize], loads: &mut Vec<f64>) {
    debug_assert_eq!(assign.len(), inst.n_tasks());
    loads.clear();
    loads.resize(inst.n_resources(), 0.0);
    for (t, &s) in assign.iter().enumerate() {
        let mut acc = inst.computation(t) * inst.processing_cost(s);
        for (a, c) in inst.interactions(t) {
            let b = assign[a];
            if b != s {
                acc += c * inst.link_cost(s, b);
            }
        }
        loads[s] += acc;
    }
}

/// Per-resource execution times (Eq. 1), freshly allocated.
pub fn exec_per_resource(inst: &MappingInstance, assign: &[usize]) -> Vec<f64> {
    let mut loads = Vec::new();
    exec_per_resource_into(inst, assign, &mut loads);
    loads
}

/// Application execution time (Eq. 2): the busiest resource's time.
///
/// Returns `0.0` for an empty instance.
///
/// ```
/// use match_core::{exec_time, MappingInstance};
/// use match_graph::gen::InstanceGenerator;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let pair = InstanceGenerator::paper_family(6).generate(&mut rng);
/// let inst = MappingInstance::from_pair(&pair);
/// // Identity mapping: task t runs on resource t.
/// let et = exec_time(&inst, &[0, 1, 2, 3, 4, 5]);
/// assert!(et > 0.0);
/// // Co-locating everything removes all communication cost.
/// let colocated = exec_time(&inst, &[0; 6]);
/// assert!(colocated < et);
/// ```
pub fn exec_time(inst: &MappingInstance, assign: &[usize]) -> f64 {
    debug_assert_eq!(assign.len(), inst.n_tasks());
    // One pass without materialising the load vector would double-count
    // communication bookkeeping; with n ≤ a few hundred the vector is
    // cheap and keeps the code identical to Eq. 1.
    let loads = exec_per_resource(inst, assign);
    loads.into_iter().fold(0.0, f64::max)
}

/// [`exec_time`] writing the Eq. 1 loads into a caller-owned scratch
/// vector instead of allocating one per call. Hot recomputation loops —
/// the verify oracle re-scoring thousands of samples, delta-update
/// cross-checks — call this with one reused buffer.
pub fn exec_time_with(inst: &MappingInstance, assign: &[usize], scratch: &mut Vec<f64>) -> f64 {
    exec_per_resource_into(inst, assign, scratch);
    scratch.iter().copied().fold(0.0, f64::max)
}

/// A borrowed view bundling an instance with its cost functions — the
/// objective object handed to CE, the GA and the baselines.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    inst: &'a MappingInstance,
}

impl<'a> CostModel<'a> {
    /// Wrap an instance.
    pub fn new(inst: &'a MappingInstance) -> Self {
        CostModel { inst }
    }

    /// The instance.
    pub fn instance(&self) -> &'a MappingInstance {
        self.inst
    }

    /// Eq. 2 for `assign`.
    pub fn evaluate(&self, assign: &[usize]) -> f64 {
        exec_time(self.inst, assign)
    }

    /// Eq. 1 for `assign`.
    pub fn per_resource(&self, assign: &[usize]) -> Vec<f64> {
        exec_per_resource(self.inst, assign)
    }
}

/// Delta-update `loads` (Eq. 1 per-resource times) for moving task `t`
/// to resource `new_r`, in O(degree(t)).
///
/// `assign` and `loads` must be consistent on entry (`loads` equal to
/// [`exec_per_resource`] of `assign`); on return `assign[t] == new_r`
/// and `loads` is consistent again. This is the flat-buffer form of
/// [`IncrementalCost::apply_move`], shared by the local-search
/// baselines and the batched GA mutation path, where the assignment
/// and load vectors live in caller-owned reused buffers.
pub fn apply_move_delta(
    inst: &MappingInstance,
    assign: &mut [usize],
    loads: &mut [f64],
    t: usize,
    new_r: usize,
) {
    let old_r = assign[t];
    if old_r == new_r {
        return;
    }
    // Processing term.
    loads[old_r] -= inst.computation(t) * inst.processing_cost(old_r);
    loads[new_r] += inst.computation(t) * inst.processing_cost(new_r);
    // Communication terms: t's own, and each neighbour's toward t.
    for (a, c) in inst.interactions(t) {
        let b = assign[a];
        // t paid c·link(old_r, b) if split; now pays c·link(new_r, b).
        if b != old_r {
            loads[old_r] -= c * inst.link_cost(old_r, b);
        }
        if b != new_r {
            loads[new_r] += c * inst.link_cost(new_r, b);
        }
        // Neighbour a paid c·link(b, old_r) if split; symmetric update.
        if b != old_r {
            loads[b] -= c * inst.link_cost(b, old_r);
        }
        if b != new_r {
            loads[b] += c * inst.link_cost(b, new_r);
        }
    }
    assign[t] = new_r;
}

/// Delta-update `loads` for swapping the resources of tasks `t1` and
/// `t2` (keeps bijectivity), in O(degree(t1) + degree(t2)).
///
/// Flat-buffer form of [`IncrementalCost::apply_swap`]; see
/// [`apply_move_delta`] for the buffer contract.
pub fn apply_swap_delta(
    inst: &MappingInstance,
    assign: &mut [usize],
    loads: &mut [f64],
    t1: usize,
    t2: usize,
) {
    let r1 = assign[t1];
    let r2 = assign[t2];
    // Two sequential moves are correct because every load update reads
    // the *current* assignment.
    apply_move_delta(inst, assign, loads, t1, r2);
    apply_move_delta(inst, assign, loads, t2, r1);
}

/// Incrementally maintained per-resource loads under task moves.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalCost<'a> {
    inst: &'a MappingInstance,
    assign: Vec<usize>,
    loads: Vec<f64>,
}

impl<'a> IncrementalCost<'a> {
    /// Initialise from an assignment.
    pub fn new(inst: &'a MappingInstance, assign: Vec<usize>) -> Self {
        let loads = exec_per_resource(inst, &assign);
        IncrementalCost {
            inst,
            assign,
            loads,
        }
    }

    /// Current assignment.
    pub fn assign(&self) -> &[usize] {
        &self.assign
    }

    /// Current per-resource loads (Eq. 1).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Current makespan (Eq. 2).
    pub fn cost(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Move task `t` to `new_r`, updating loads in O(degree(t)).
    pub fn apply_move(&mut self, t: usize, new_r: usize) {
        apply_move_delta(self.inst, &mut self.assign, &mut self.loads, t, new_r);
    }

    /// Swap the resources of tasks `t1` and `t2` (keeps bijectivity).
    pub fn apply_swap(&mut self, t1: usize, t2: usize) {
        apply_swap_delta(self.inst, &mut self.assign, &mut self.loads, t1, t2);
    }

    /// Cost after hypothetically moving `t` to `new_r` (state unchanged).
    pub fn peek_move(&mut self, t: usize, new_r: usize) -> f64 {
        let old_r = self.assign[t];
        self.apply_move(t, new_r);
        let c = self.cost();
        self.apply_move(t, old_r);
        c
    }

    /// Cost after hypothetically swapping `t1` and `t2` (state unchanged).
    pub fn peek_swap(&mut self, t1: usize, t2: usize) -> f64 {
        self.apply_swap(t1, t2);
        let c = self.cost();
        self.apply_swap(t1, t2);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingInstance;
    use match_graph::gen::InstanceGenerator;
    use match_graph::graph::Graph;
    use match_graph::{ResourceGraph, TaskGraph};
    use match_rngutil::perm::random_permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    /// The 3-task / 3-resource instance from problem.rs, rebuilt here.
    fn tiny() -> MappingInstance {
        let mut tg = Graph::from_node_weights(vec![1.0, 2.0, 3.0]).unwrap();
        tg.add_edge(0, 1, 10.0).unwrap();
        tg.add_edge(1, 2, 20.0).unwrap();
        let tig = TaskGraph::new(tg).unwrap();
        let mut rg = Graph::from_node_weights(vec![1.0, 2.0, 4.0]).unwrap();
        rg.add_edge(0, 1, 5.0).unwrap();
        rg.add_edge(1, 2, 5.0).unwrap();
        rg.add_edge(0, 2, 7.0).unwrap();
        let resources = ResourceGraph::new(rg).unwrap();
        MappingInstance::new(&tig, &resources)
    }

    #[test]
    fn hand_computed_identity_mapping() {
        // M = identity: task t on resource t.
        // Exec_0 = W0·w0 + C01·c01           = 1·1 + 10·5          = 51
        // Exec_1 = W1·w1 + C01·c01 + C12·c12 = 2·2 + 10·5 + 20·5   = 154
        // Exec_2 = W2·w2 + C12·c12           = 3·4 + 20·5          = 112
        let inst = tiny();
        let loads = exec_per_resource(&inst, &[0, 1, 2]);
        assert_eq!(loads, vec![51.0, 154.0, 112.0]);
        assert_eq!(exec_time(&inst, &[0, 1, 2]), 154.0);
    }

    #[test]
    fn colocated_tasks_skip_communication() {
        // All tasks on resource 0: pure processing, w0 = 1.
        // Exec_0 = (1 + 2 + 3)·1 = 6.
        let inst = tiny();
        let loads = exec_per_resource(&inst, &[0, 0, 0]);
        assert_eq!(loads, vec![6.0, 0.0, 0.0]);
        assert_eq!(exec_time(&inst, &[0, 0, 0]), 6.0);
    }

    #[test]
    fn hand_computed_permuted_mapping() {
        // M = [2, 0, 1]: task0→r2, task1→r0, task2→r1.
        // Exec_2 = W0·w2 + C01·c20 = 1·4 + 10·7            = 74
        // Exec_0 = W1·w0 + C01·c02 + C12·c01 = 2·1 + 70 + 100 = 172
        // Exec_1 = W2·w1 + C12·c10 = 3·2 + 20·5            = 106
        let inst = tiny();
        let loads = exec_per_resource(&inst, &[2, 0, 1]);
        assert_eq!(loads, vec![172.0, 106.0, 74.0]);
        assert_eq!(exec_time(&inst, &[2, 0, 1]), 172.0);
    }

    #[test]
    fn cost_model_wrapper_agrees() {
        let inst = tiny();
        let cm = CostModel::new(&inst);
        assert_eq!(cm.evaluate(&[0, 1, 2]), 154.0);
        assert_eq!(cm.per_resource(&[0, 0, 0]), vec![6.0, 0.0, 0.0]);
    }

    #[test]
    fn exec_time_with_reuses_scratch_and_matches() {
        let inst = tiny();
        let mut scratch = Vec::new();
        for assign in [[0usize, 1, 2], [2, 0, 1], [0, 0, 0]] {
            let got = exec_time_with(&inst, &assign, &mut scratch);
            assert_eq!(got.to_bits(), exec_time(&inst, &assign).to_bits());
            assert_eq!(scratch, exec_per_resource(&inst, &assign));
        }
    }

    #[test]
    fn incremental_move_matches_full_recompute() {
        let mut rng = StdRng::seed_from_u64(11);
        let pair = InstanceGenerator::paper_family(14).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        let start = random_permutation(14, &mut rng);
        let mut inc = IncrementalCost::new(&inst, start);
        for _ in 0..300 {
            let t = rng.random_range(0..14);
            let r = rng.random_range(0..14);
            inc.apply_move(t, r);
            let want = exec_per_resource(&inst, inc.assign());
            for (s, (&got, &w)) in inc.loads().iter().zip(&want).enumerate() {
                assert!(close(got, w, 1e-9), "resource {s}: {got} vs {w}");
            }
            assert!(close(inc.cost(), exec_time(&inst, inc.assign()), 1e-9));
        }
    }

    #[test]
    fn incremental_swap_matches_full_recompute() {
        let mut rng = StdRng::seed_from_u64(12);
        let pair = InstanceGenerator::paper_family(12).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        let start = random_permutation(12, &mut rng);
        let mut inc = IncrementalCost::new(&inst, start);
        for _ in 0..300 {
            let a = rng.random_range(0..12);
            let b = rng.random_range(0..12);
            inc.apply_swap(a, b);
            assert!(
                close(inc.cost(), exec_time(&inst, inc.assign()), 1e-9),
                "after swap {a} <-> {b}"
            );
            // Swaps preserve bijectivity.
            assert!(match_rngutil::perm::is_permutation(inc.assign()));
        }
    }

    #[test]
    fn peek_leaves_state_unchanged() {
        let mut rng = StdRng::seed_from_u64(13);
        let pair = InstanceGenerator::paper_family(10).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        let start = random_permutation(10, &mut rng);
        let mut inc = IncrementalCost::new(&inst, start.clone());
        let before_cost = inc.cost();
        let peeked = inc.peek_move(3, 7);
        assert_eq!(inc.assign(), &start[..]);
        assert!(close(inc.cost(), before_cost, 1e-12));
        // And the peeked value is what applying would give.
        let mut applied = IncrementalCost::new(&inst, start.clone());
        applied.apply_move(3, 7);
        assert!(close(peeked, applied.cost(), 1e-9));

        let peeked = inc.peek_swap(2, 8);
        assert_eq!(inc.assign(), &start[..]);
        let mut applied = IncrementalCost::new(&inst, start);
        applied.apply_swap(2, 8);
        assert!(close(peeked, applied.cost(), 1e-9));
    }

    #[test]
    fn move_to_same_resource_is_noop() {
        let inst = tiny();
        let mut inc = IncrementalCost::new(&inst, vec![0, 1, 2]);
        let before = inc.clone();
        inc.apply_move(1, 1);
        assert_eq!(inc, before);
    }

    #[test]
    fn empty_instance_costs_zero() {
        let tig = TaskGraph::new(Graph::new()).unwrap();
        let res = ResourceGraph::new(Graph::new()).unwrap();
        let inst = MappingInstance::new(&tig, &res);
        assert_eq!(exec_time(&inst, &[]), 0.0);
    }

    #[test]
    fn makespan_is_max_not_sum() {
        let inst = tiny();
        let loads = exec_per_resource(&inst, &[0, 1, 2]);
        let sum: f64 = loads.iter().sum();
        assert!(exec_time(&inst, &[0, 1, 2]) < sum);
        assert_eq!(
            exec_time(&inst, &[0, 1, 2]),
            loads.iter().copied().fold(0.0, f64::max)
        );
    }
}
