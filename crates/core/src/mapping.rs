//! Task→resource assignment vectors.

use crate::problem::MappingInstance;

/// A mapping `M : V_t → V_r`, stored as `assign[task] = resource`.
///
/// In the paper's experiments mappings are bijections (`|V_t| = |V_r|`,
/// one task per resource); the type itself also represents many-to-one
/// assignments for the generalised solver.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    assign: Vec<usize>,
}

impl Mapping {
    /// Wrap an assignment vector.
    pub fn new(assign: Vec<usize>) -> Self {
        Mapping { assign }
    }

    /// The identity mapping of size `n` (task `i` on resource `i`).
    pub fn identity(n: usize) -> Self {
        Mapping {
            assign: (0..n).collect(),
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True when no tasks are mapped.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Resource of task `t`.
    pub fn resource_of(&self, t: usize) -> usize {
        self.assign[t]
    }

    /// The raw assignment slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.assign
    }

    /// Reassign task `t` to `resource`.
    pub fn set(&mut self, t: usize, resource: usize) {
        self.assign[t] = resource;
    }

    /// Swap the resources of tasks `a` and `b`.
    pub fn swap_tasks(&mut self, a: usize, b: usize) {
        self.assign.swap(a, b);
    }

    /// Tasks assigned to `resource` (O(n) scan).
    pub fn tasks_on(&self, resource: usize) -> Vec<usize> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == resource)
            .map(|(t, _)| t)
            .collect()
    }

    /// True when the mapping is a bijection onto `0..len` — the validity
    /// condition GenPerm enforces by construction.
    pub fn is_permutation(&self) -> bool {
        match_rngutil::perm::is_permutation(&self.assign)
    }

    /// Check the mapping against an instance: every task mapped, every
    /// target a real resource; when the instance is square, additionally
    /// require a bijection (the paper's validity rule).
    pub fn validate(&self, inst: &MappingInstance) -> Result<(), MappingError> {
        if self.assign.len() != inst.n_tasks() {
            return Err(MappingError::WrongLength {
                got: self.assign.len(),
                want: inst.n_tasks(),
            });
        }
        if let Some(&r) = self.assign.iter().find(|&&r| r >= inst.n_resources()) {
            return Err(MappingError::ResourceOutOfRange {
                resource: r,
                n_resources: inst.n_resources(),
            });
        }
        if inst.is_square() && !self.is_permutation() {
            return Err(MappingError::NotBijective);
        }
        Ok(())
    }
}

impl From<Vec<usize>> for Mapping {
    fn from(assign: Vec<usize>) -> Self {
        Mapping::new(assign)
    }
}

/// Validation failures for a [`Mapping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The vector length does not match the task count.
    WrongLength {
        /// Tasks in the mapping.
        got: usize,
        /// Tasks in the instance.
        want: usize,
    },
    /// Some task points at a non-existent resource.
    ResourceOutOfRange {
        /// The offending resource id.
        resource: usize,
        /// Number of resources in the instance.
        n_resources: usize,
    },
    /// A square instance requires a bijective mapping.
    NotBijective,
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::WrongLength { got, want } => {
                write!(f, "mapping has {got} tasks, instance has {want}")
            }
            MappingError::ResourceOutOfRange {
                resource,
                n_resources,
            } => {
                write!(
                    f,
                    "resource {resource} out of range ({n_resources} resources)"
                )
            }
            MappingError::NotBijective => write!(f, "square instance requires a bijection"),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingInstance;
    use match_graph::gen::InstanceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_instance(n: usize) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(n as u64);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn identity_is_permutation() {
        let m = Mapping::identity(5);
        assert_eq!(m.len(), 5);
        assert!(m.is_permutation());
        assert_eq!(m.resource_of(3), 3);
    }

    #[test]
    fn tasks_on_scans_correctly() {
        let m = Mapping::new(vec![2, 0, 2, 1]);
        assert_eq!(m.tasks_on(2), vec![0, 2]);
        assert_eq!(m.tasks_on(0), vec![1]);
        assert_eq!(m.tasks_on(3), Vec::<usize>::new());
    }

    #[test]
    fn set_and_swap() {
        let mut m = Mapping::identity(4);
        m.set(0, 3);
        assert_eq!(m.resource_of(0), 3);
        m.swap_tasks(0, 3);
        assert_eq!(m.resource_of(0), 3);
        assert_eq!(m.resource_of(3), 3);
        m = Mapping::identity(4);
        m.swap_tasks(1, 2);
        assert_eq!(m.as_slice(), &[0, 2, 1, 3]);
    }

    #[test]
    fn validate_accepts_good_mapping() {
        let inst = square_instance(6);
        assert!(Mapping::identity(6).validate(&inst).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let inst = square_instance(6);
        assert_eq!(
            Mapping::identity(5).validate(&inst),
            Err(MappingError::WrongLength { got: 5, want: 6 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let inst = square_instance(3);
        assert!(matches!(
            Mapping::new(vec![0, 1, 7]).validate(&inst),
            Err(MappingError::ResourceOutOfRange { resource: 7, .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicates_on_square() {
        let inst = square_instance(3);
        assert_eq!(
            Mapping::new(vec![0, 0, 1]).validate(&inst),
            Err(MappingError::NotBijective)
        );
    }
}
