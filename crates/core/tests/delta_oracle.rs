//! Property tests pinning the incremental delta-cost path to the fresh
//! Eq. 1 oracle.
//!
//! The batched GA, hill climber, and simulated annealer all maintain
//! per-resource `loads` through [`apply_move_delta`] / [`apply_swap_delta`]
//! instead of re-evaluating `exec_per_resource` from scratch. These tests
//! drive long random move/swap sequences over random *heterogeneous*
//! instances — uneven processing costs, vanishingly small interaction
//! weights (the zero-weight limit), and neighbours co-located on one
//! resource — and check the drifted loads against a fresh evaluation
//! after every step.

use match_core::{apply_move_delta, apply_swap_delta, exec_per_resource, MappingInstance};
use match_graph::{Graph, ResourceGraph, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random heterogeneous instance: `n` tasks with a random interaction
/// topology, `m` resources on a complete platform with uneven costs.
/// Task/resource counts need not match — the delta path has no
/// squareness requirement.
fn random_instance(rng: &mut StdRng) -> MappingInstance {
    let n = rng.random_range(2..10usize);
    let m = rng.random_range(1..6usize);
    let mut tig = Graph::new();
    for _ in 0..n {
        tig.add_node(rng.random_range(0.1..10.0)).unwrap();
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < 0.4 {
                // TIG edges must be strictly positive, so the zero-weight
                // limit is probed with a weight 12 orders of magnitude
                // below the computation weights.
                let w = if rng.random::<f64>() < 0.25 {
                    1e-12
                } else {
                    rng.random_range(0.1..8.0)
                };
                tig.add_edge(u, v, w).unwrap();
            }
        }
    }
    let mut plat = Graph::new();
    for _ in 0..m {
        plat.add_node(rng.random_range(0.5..4.0)).unwrap();
    }
    for s in 0..m {
        for b in (s + 1)..m {
            plat.add_edge(s, b, rng.random_range(0.2..3.0)).unwrap();
        }
    }
    MappingInstance::new(
        &TaskGraph::new(tig).unwrap(),
        &ResourceGraph::new(plat).unwrap(),
    )
}

/// Element-wise comparison of drifted loads against a fresh evaluation.
fn assert_loads_match(inst: &MappingInstance, assign: &[usize], loads: &[f64], step: usize) {
    let fresh = exec_per_resource(inst, assign);
    assert_eq!(loads.len(), fresh.len());
    for (r, (&got, &want)) in loads.iter().zip(fresh.iter()).enumerate() {
        assert!(
            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "resource {r} drifted after step {step}: incremental {got} vs fresh {want}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random move sequences keep `loads` within 1e-9 of the oracle,
    /// including no-op moves (task already on the target resource).
    #[test]
    fn moves_track_fresh_evaluation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        let (n, m) = (inst.n_tasks(), inst.n_resources());
        let mut assign: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        let mut loads = exec_per_resource(&inst, &assign);
        for step in 0..60 {
            let t = rng.random_range(0..n);
            let r = rng.random_range(0..m);
            apply_move_delta(&inst, &mut assign, &mut loads, t, r);
            prop_assert_eq!(assign[t], r);
            assert_loads_match(&inst, &assign, &loads, step);
        }
    }

    /// Random interleaved move/swap sequences stay consistent. Starting
    /// from an all-on-one-resource assignment maximises co-located
    /// neighbours, the case where the communication term cancels.
    #[test]
    fn swaps_and_moves_track_fresh_evaluation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        let (n, m) = (inst.n_tasks(), inst.n_resources());
        let mut assign: Vec<usize> = vec![rng.random_range(0..m); n];
        let mut loads = exec_per_resource(&inst, &assign);
        for step in 0..60 {
            if rng.random::<f64>() < 0.5 {
                // Swap two tasks' resources — t1 == t2 must be a no-op.
                let t1 = rng.random_range(0..n);
                let t2 = rng.random_range(0..n);
                apply_swap_delta(&inst, &mut assign, &mut loads, t1, t2);
            } else {
                let t = rng.random_range(0..n);
                let r = rng.random_range(0..m);
                apply_move_delta(&inst, &mut assign, &mut loads, t, r);
            }
            assert_loads_match(&inst, &assign, &loads, step);
        }
    }

    /// A swap is exactly the composition of its two moves: both orders
    /// land on the same assignment and the same loads.
    #[test]
    fn swap_equals_two_moves(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(&mut rng);
        let (n, m) = (inst.n_tasks(), inst.n_resources());
        let assign0: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        let t1 = rng.random_range(0..n);
        let t2 = rng.random_range(0..n);

        let mut a = assign0.clone();
        let mut la = exec_per_resource(&inst, &a);
        apply_swap_delta(&inst, &mut a, &mut la, t1, t2);

        let mut b = assign0.clone();
        let mut lb = exec_per_resource(&inst, &b);
        let (r1, r2) = (b[t1], b[t2]);
        apply_move_delta(&inst, &mut b, &mut lb, t1, r2);
        apply_move_delta(&inst, &mut b, &mut lb, t2, r1);

        prop_assert_eq!(&a, &b);
        for (x, y) in la.iter().zip(lb.iter()) {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()));
        }
        assert_loads_match(&inst, &a, &la, 0);
    }
}
