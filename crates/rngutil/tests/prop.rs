//! Property-based tests for the randomness helpers.

use match_rngutil::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn roulette_picks_only_positive_weights(
        weights in proptest::collection::vec(-1.0f64..10.0, 1..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        match roulette_pick(&weights, &mut rng) {
            Some(i) => prop_assert!(weights[i] > 0.0, "picked weight {}", weights[i]),
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0 || w.is_nan() || !w.is_finite())),
        }
    }

    #[test]
    fn wheel_agrees_with_domain(
        weights in proptest::collection::vec(0.0f64..10.0, 1..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(wheel) = RouletteWheel::new(&weights) {
            for _ in 0..16 {
                let i = wheel.spin(&mut rng);
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0);
            }
        }
    }

    #[test]
    fn alias_picks_only_positive_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(t) = AliasTable::new(&weights) {
            prop_assert_eq!(t.len(), weights.len());
            for _ in 0..32 {
                let i = t.sample(&mut rng);
                prop_assert!(weights[i] > 0.0, "alias picked zero-weight slot {}", i);
            }
        }
    }

    #[test]
    fn permutations_always_valid(n in 0usize..100, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_permutation(n, &mut rng);
        prop_assert!(perm::is_permutation(&p));
        if n > 0 {
            let q = perm::invert_permutation(&p);
            for i in 0..n {
                prop_assert_eq!(p[q[i]], i);
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset(mut xs in proptest::collection::vec(0u32..100, 0..50),
                                  seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut before = xs.clone();
        shuffle(&mut xs, &mut rng);
        before.sort_unstable();
        let mut after = xs;
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn seed_derivation_injective_in_practice(master in any::<u64>(), a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(master, a), derive_seed(master, b));
    }

    #[test]
    fn child_sequences_reproducible(master in any::<u64>(), label in any::<u64>()) {
        let r = SeedSequence::new(master);
        let xs: Vec<u64> = {
            let mut c = r.child(label);
            (0..4).map(|_| c.next_seed()).collect()
        };
        let ys: Vec<u64> = {
            let mut c = r.child(label);
            (0..4).map(|_| c.next_seed()).collect()
        };
        prop_assert_eq!(xs, ys);
    }
}
