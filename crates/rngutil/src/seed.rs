//! Seed derivation.
//!
//! A single master seed identifies a whole experiment; sub-seeds for each
//! graph instance, algorithm run and worker thread are derived with
//! SplitMix64 so that changing the number of repetitions or threads never
//! perturbs the random streams of unrelated components.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weyl-sequence increment of the SplitMix64 generator (the golden
/// ratio in 0.64 fixed point).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: a high-quality 64-bit mix of `state`.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator as a full [`rand::RngCore`]: a counter
/// advanced by [`GOLDEN_GAMMA`] per draw, output mixed by the
/// avalanche function above.
///
/// This is the cheap per-sample stream behind the batched pipelines:
/// where deriving a `StdRng` per sample pays the ChaCha key-expansion
/// on every derivation, [`SplitMix64::stream`] is two mixes to seed and
/// one mix per draw, and streams for distinct `(master, label)` pairs
/// are independent by the same argument as [`derive_seed`]. Statistical
/// quality is ample for sampling decisions (it is the generator
/// `SeedSequence` already trusts for seed derivation), but it is not a
/// cryptographic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The per-sample stream for `(master, label)` — e.g. one stream
    /// per row of a batch, all derived from one per-iteration master.
    /// Equivalent to `SplitMix64::new(derive_seed(master, label))`.
    pub fn stream(master: u64, label: u64) -> Self {
        SplitMix64::new(derive_seed(master, label))
    }
}

impl rand::RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        out
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Derive an independent sub-seed from `master` and a stream `label`.
///
/// Distinct labels give statistically independent streams; the same
/// `(master, label)` pair always gives the same seed.
pub fn derive_seed(master: u64, label: u64) -> u64 {
    // Two rounds keep adjacent labels far apart in state space.
    splitmix64(splitmix64(master ^ 0xA076_1D64_78BD_642F).wrapping_add(splitmix64(label)))
}

/// Construct a seeded [`StdRng`] for `(master, label)`.
pub fn rng_from(master: u64, label: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// [`derive_seed`] keyed by a string label: the label is folded to a
/// `u64` with FNV-1a, so every *named* component (a verification check,
/// a golden fixture, a corpus entry) gets a stable stream that survives
/// reordering, insertion, and deletion of its neighbours.
pub fn derive_seed_str(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive_seed(master, h)
}

/// A hierarchical seed sequence: each call to [`SeedSequence::next_seed`]
/// yields the next sub-seed; [`SeedSequence::child`] opens a nested,
/// independent sequence.
///
/// Typical use in the harness:
///
/// ```
/// use match_rngutil::SeedSequence;
///
/// let mut exp = SeedSequence::new(42);
/// let mut per_size = exp.child(10);       // everything for |V| = 10
/// let graph_seed = per_size.next_seed();  // instance generation
/// let run_seed = per_size.next_seed();    // first solver run
/// assert_ne!(graph_seed, run_seed);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    master: u64,
    counter: u64,
}

impl SeedSequence {
    /// Root sequence for a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master, counter: 0 }
    }

    /// The next sub-seed in this sequence.
    pub fn next_seed(&mut self) -> u64 {
        let s = derive_seed(self.master, self.counter);
        self.counter += 1;
        s
    }

    /// The next seeded RNG in this sequence.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// A nested sequence for stream `label`, independent of this
    /// sequence's own outputs and of children with other labels.
    pub fn child(&self, label: u64) -> SeedSequence {
        SeedSequence {
            master: derive_seed(self.master ^ 0x5851_F42D_4C95_7F2D, label),
            counter: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derive_str_is_deterministic_and_label_sensitive() {
        assert_eq!(
            derive_seed_str(7, "golden/ce-n8"),
            derive_seed_str(7, "golden/ce-n8")
        );
        assert_ne!(
            derive_seed_str(7, "golden/ce-n8"),
            derive_seed_str(8, "golden/ce-n8")
        );
        assert_ne!(
            derive_seed_str(7, "golden/ce-n8"),
            derive_seed_str(7, "golden/ga-n8")
        );
        // The empty label is valid and distinct from short labels.
        assert_ne!(derive_seed_str(7, ""), derive_seed_str(7, "a"));
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let mut seen = HashSet::new();
        for label in 0..10_000u64 {
            assert!(seen.insert(derive_seed(123, label)), "collision at {label}");
        }
    }

    #[test]
    fn distinct_masters_distinct_seeds() {
        let mut seen = HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 7)), "collision at {master}");
        }
    }

    #[test]
    fn rng_from_reproducible() {
        let a: Vec<u64> = (0..8).map(|_| rng_from(9, 3).random()).collect();
        let b: Vec<u64> = (0..8).map(|_| rng_from(9, 3).random()).collect();
        assert_eq!(a, b);
        let c: u64 = rng_from(9, 4).random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn sequence_yields_distinct_seeds() {
        let mut s = SeedSequence::new(5);
        let xs: Vec<u64> = (0..100).map(|_| s.next_seed()).collect();
        let set: HashSet<_> = xs.iter().collect();
        assert_eq!(set.len(), xs.len());
    }

    #[test]
    fn children_independent_of_parent_and_siblings() {
        let root = SeedSequence::new(77);
        let mut a = root.child(0);
        let mut b = root.child(1);
        let mut parent = root.clone();
        let pa = parent.next_seed();
        assert_ne!(a.next_seed(), b.next_seed());
        // Child streams don't collide with the parent stream.
        let mut a2 = root.child(0);
        assert_ne!(a2.next_seed(), pa);
    }

    #[test]
    fn child_is_deterministic() {
        let root = SeedSequence::new(3);
        let x = root.child(9).next_seed();
        let y = root.child(9).next_seed();
        assert_eq!(x, y);
    }

    #[test]
    fn splitmix_stream_reproducible() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::stream(9, 3);
            (0..16).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::stream(9, 3);
            (0..16).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let mut other = SplitMix64::stream(9, 4);
        assert_ne!(a[0], other.random::<u64>());
    }

    #[test]
    fn splitmix_stream_seeds_match_derive_seed() {
        assert_eq!(
            SplitMix64::stream(42, 7),
            SplitMix64::new(derive_seed(42, 7))
        );
    }

    #[test]
    fn splitmix_streams_do_not_collide() {
        // 100 streams × 100 draws: no duplicated outputs across streams.
        let mut seen = HashSet::new();
        for label in 0..100u64 {
            let mut r = SplitMix64::stream(5, label);
            for _ in 0..100 {
                assert!(
                    seen.insert(r.random::<u64>()),
                    "collision in stream {label}"
                );
            }
        }
    }

    #[test]
    fn splitmix_uniformity_smoke() {
        // random::<f64>() through the RngCore impl should be ~U[0,1).
        let mut r = SplitMix64::new(0xC0FF_EE00);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // And random_range respects its bounds.
        for _ in 0..1_000 {
            let x = r.random_range(0..17usize);
            assert!(x < 17);
        }
    }

    #[test]
    fn splitmix_fill_bytes_matches_next_u64() {
        use rand::RngCore;
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0[..]);
        assert_eq!(&buf[8..], &w1[..4]);
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = derive_seed(0xDEAD_BEEF, 0);
        let flipped = derive_seed(0xDEAD_BEEF ^ 1, 0);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "weak avalanche: {differing} bits"
        );
    }
}
