//! Seed derivation.
//!
//! A single master seed identifies a whole experiment; sub-seeds for each
//! graph instance, algorithm run and worker thread are derived with
//! SplitMix64 so that changing the number of repetitions or threads never
//! perturbs the random streams of unrelated components.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step: a high-quality 64-bit mix of `state`.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent sub-seed from `master` and a stream `label`.
///
/// Distinct labels give statistically independent streams; the same
/// `(master, label)` pair always gives the same seed.
pub fn derive_seed(master: u64, label: u64) -> u64 {
    // Two rounds keep adjacent labels far apart in state space.
    splitmix64(splitmix64(master ^ 0xA076_1D64_78BD_642F).wrapping_add(splitmix64(label)))
}

/// Construct a seeded [`StdRng`] for `(master, label)`.
pub fn rng_from(master: u64, label: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// A hierarchical seed sequence: each call to [`SeedSequence::next_seed`]
/// yields the next sub-seed; [`SeedSequence::child`] opens a nested,
/// independent sequence.
///
/// Typical use in the harness:
///
/// ```
/// use match_rngutil::SeedSequence;
///
/// let mut exp = SeedSequence::new(42);
/// let mut per_size = exp.child(10);       // everything for |V| = 10
/// let graph_seed = per_size.next_seed();  // instance generation
/// let run_seed = per_size.next_seed();    // first solver run
/// assert_ne!(graph_seed, run_seed);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    master: u64,
    counter: u64,
}

impl SeedSequence {
    /// Root sequence for a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master, counter: 0 }
    }

    /// The next sub-seed in this sequence.
    pub fn next_seed(&mut self) -> u64 {
        let s = derive_seed(self.master, self.counter);
        self.counter += 1;
        s
    }

    /// The next seeded RNG in this sequence.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// A nested sequence for stream `label`, independent of this
    /// sequence's own outputs and of children with other labels.
    pub fn child(&self, label: u64) -> SeedSequence {
        SeedSequence {
            master: derive_seed(self.master ^ 0x5851_F42D_4C95_7F2D, label),
            counter: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let mut seen = HashSet::new();
        for label in 0..10_000u64 {
            assert!(seen.insert(derive_seed(123, label)), "collision at {label}");
        }
    }

    #[test]
    fn distinct_masters_distinct_seeds() {
        let mut seen = HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 7)), "collision at {master}");
        }
    }

    #[test]
    fn rng_from_reproducible() {
        let a: Vec<u64> = (0..8).map(|_| rng_from(9, 3).random()).collect();
        let b: Vec<u64> = (0..8).map(|_| rng_from(9, 3).random()).collect();
        assert_eq!(a, b);
        let c: u64 = rng_from(9, 4).random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn sequence_yields_distinct_seeds() {
        let mut s = SeedSequence::new(5);
        let xs: Vec<u64> = (0..100).map(|_| s.next_seed()).collect();
        let set: HashSet<_> = xs.iter().collect();
        assert_eq!(set.len(), xs.len());
    }

    #[test]
    fn children_independent_of_parent_and_siblings() {
        let root = SeedSequence::new(77);
        let mut a = root.child(0);
        let mut b = root.child(1);
        let mut parent = root.clone();
        let pa = parent.next_seed();
        assert_ne!(a.next_seed(), b.next_seed());
        // Child streams don't collide with the parent stream.
        let mut a2 = root.child(0);
        assert_ne!(a2.next_seed(), pa);
    }

    #[test]
    fn child_is_deterministic() {
        let root = SeedSequence::new(3);
        let x = root.child(9).next_seed();
        let y = root.child(9).next_seed();
        assert_eq!(x, y);
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = derive_seed(0xDEAD_BEEF, 0);
        let flipped = derive_seed(0xDEAD_BEEF ^ 1, 0);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "weak avalanche: {differing} bits"
        );
    }
}
