//! Uniform random permutations (Fisher–Yates).
//!
//! GenPerm step 1 draws "a random permutation (π₀, …, π_{|Vr|−1})" to fix
//! the order in which task rows are sampled, and FastMap-GA seeds its
//! initial population with random permutation chromosomes. Both use the
//! unbiased inside-out Fisher–Yates shuffle implemented here.

use rand::Rng;

/// Shuffle `xs` in place with the Fisher–Yates algorithm.
pub fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// A uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    shuffle(&mut p, rng);
    p
}

/// True when `p` is a permutation of `0..p.len()`.
pub fn is_permutation(p: &[usize]) -> bool {
    let n = p.len();
    let mut seen = vec![false; n];
    for &x in p {
        if x >= n || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// The inverse permutation `q` with `q[p[i]] = i`.
///
/// Panics if `p` is not a permutation.
pub fn invert_permutation(p: &[usize]) -> Vec<usize> {
    assert!(is_permutation(p), "input is not a permutation");
    let mut q = vec![0usize; p.len()];
    for (i, &x) in p.iter().enumerate() {
        q[x] = i;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn outputs_are_permutations() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [0, 1, 2, 7, 50] {
            let p = random_permutation(n, &mut rng);
            assert_eq!(p.len(), n);
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn is_permutation_detects_flaws() {
        assert!(is_permutation(&[]));
        assert!(is_permutation(&[0]));
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1])); // out of range
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(22);
        let p = random_permutation(20, &mut rng);
        let q = invert_permutation(&p);
        for i in 0..20 {
            assert_eq!(q[p[i]], i);
            assert_eq!(p[q[i]], i);
        }
    }

    #[test]
    #[should_panic]
    fn invert_rejects_non_permutation() {
        invert_permutation(&[1, 1]);
    }

    #[test]
    fn shuffle_is_unbiased_for_n3() {
        // All 6 permutations of 3 elements should appear ~1/6 of the time.
        let mut rng = StdRng::seed_from_u64(23);
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            *counts.entry(random_permutation(3, &mut rng)).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        for (p, c) in &counts {
            let got = *c as f64 / n as f64;
            assert!(
                (got - 1.0 / 6.0).abs() < 0.01,
                "perm {p:?}: frequency {got}"
            );
        }
    }

    #[test]
    fn first_element_uniform_for_larger_n() {
        let mut rng = StdRng::seed_from_u64(24);
        let n_items = 10;
        let trials = 100_000;
        let mut counts = vec![0usize; n_items];
        for _ in 0..trials {
            counts[random_permutation(n_items, &mut rng)[0]] += 1;
        }
        for &c in &counts {
            let got = c as f64 / trials as f64;
            assert!((got - 0.1).abs() < 0.01, "got {got}");
        }
    }
}
