//! Deterministic randomness helpers for the MaTCH reproduction.
//!
//! Every experiment in the paper is an average over repeated randomized
//! runs; to make the reproduction bit-for-bit repeatable, all stochastic
//! components (graph generation, GenPerm sampling, GA operators, …) draw
//! from seeded [`rand::rngs::StdRng`] instances derived through this
//! crate:
//!
//! * [`seed`] — SplitMix64-based derivation of independent sub-seeds from
//!   a single experiment master seed (one per graph instance, per run,
//!   per worker thread).
//! * [`roulette`] — fitness-proportional ("roulette wheel") selection,
//!   the selection operator of both FastMap-GA (§5.1) and the smoothed
//!   sampling MaTCH uses inside GenPerm (§5.2).
//! * [`alias`] — Vose's alias method for O(1) repeated draws from a fixed
//!   discrete distribution (used where one distribution is sampled many
//!   times, e.g. task-ordering biases in the harness).
//! * [`perm`] — uniform random permutations (Fisher–Yates), the random
//!   task visit order of GenPerm step 1 and the GA's initial population.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod perm;
pub mod roulette;
pub mod seed;

pub use alias::AliasTable;
pub use perm::{random_permutation, shuffle};
pub use roulette::{roulette_pick, RouletteWheel};
pub use seed::{derive_seed, derive_seed_str, rng_from, SeedSequence, SplitMix64};
