//! Roulette-wheel (fitness-proportional) selection.
//!
//! FastMap-GA selects parents "by the roulette wheel selection strategy,
//! where the probability of a parent being selected depends directly on
//! its fitness" (§5.1), and MaTCH's GenPerm allocates each task to a
//! resource with probability proportional to the task's row of the
//! stochastic matrix (§5.2 likens this to the same wheel). Both call into
//! this module.

use rand::Rng;

/// Pick an index with probability proportional to `weights[i]`.
///
/// Non-finite or negative weights are treated as zero. Returns `None`
/// when the slice is empty or all weights are zero.
///
/// This is the one-shot O(n) form used inside GenPerm, where the row
/// distribution changes after every pick (columns are zeroed out), so no
/// precomputation can be amortised.
pub fn roulette_pick<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    let total: f64 = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .sum();
    if total <= 0.0 || weights.is_empty() {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        if w > 0.0 {
            last_positive = Some(i);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack can leave `target` marginally past the last
    // positive weight; attribute it there.
    last_positive
}

/// A precomputed cumulative wheel for repeated O(log n) picks from the
/// same weight vector — the GA spins the wheel `population` times per
/// generation over one fixed fitness vector.
#[derive(Debug, Clone)]
pub struct RouletteWheel {
    cumulative: Vec<f64>,
}

impl RouletteWheel {
    /// Build a wheel; returns `None` when no weight is positive.
    ///
    /// Negative or non-finite weights are clamped to zero, mirroring
    /// [`roulette_pick`].
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if w.is_finite() && w > 0.0 {
                acc += w;
            }
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(RouletteWheel { cumulative })
    }

    /// Number of slots on the wheel.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the wheel has no slots.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Spin the wheel once.
    pub fn spin<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = rng.random::<f64>() * total;
        // partition_point: first index whose cumulative value exceeds target.
        let idx = self.cumulative.partition_point(|&c| c <= target);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_zero_weights_yield_none() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(roulette_pick(&[], &mut rng), None);
        assert_eq!(roulette_pick(&[0.0, 0.0], &mut rng), None);
        assert!(RouletteWheel::new(&[]).is_none());
        assert!(RouletteWheel::new(&[0.0, -1.0]).is_none());
    }

    #[test]
    fn single_positive_weight_always_picked() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(roulette_pick(&[0.0, 3.0, 0.0], &mut rng), Some(1));
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[roulette_pick(&weights, &mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "slot {i}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn wheel_matches_one_shot_distribution() {
        let weights = [5.0, 0.0, 1.0, 4.0];
        let wheel = RouletteWheel::new(&weights).unwrap();
        assert_eq!(wheel.len(), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[wheel.spin(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight slot must never be picked");
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "slot {i}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn negative_and_nan_weights_ignored() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let pick = roulette_pick(&[-5.0, f64::NAN, 2.0, f64::INFINITY], &mut rng);
            assert_eq!(pick, Some(2));
        }
    }

    #[test]
    fn wheel_spin_always_in_range() {
        let wheel = RouletteWheel::new(&[0.1, 0.0, 0.0, 0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let i = wheel.spin(&mut rng);
            assert!(i < 4);
            assert_ne!(i, 1);
            assert_ne!(i, 2);
        }
    }
}
