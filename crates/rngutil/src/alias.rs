//! Vose's alias method: O(1) sampling from a fixed discrete distribution
//! after O(n) preprocessing.
//!
//! The roulette wheel costs O(log n) per spin; when one distribution is
//! sampled very many times (e.g. drawing the GA's mating pool from a
//! fitness vector, GenPerm drawing a whole CE batch from one frozen
//! stochastic matrix, or workload generators drawing thousands of
//! grid-point counts), the alias table is the asymptotically optimal
//! tool. [`AliasTable::rebuild`] refreshes a table in place without
//! allocating, so per-iteration rebuilds (the CE matrix changes between
//! iterations but not within one) stay off the allocator.

use rand::Rng;

/// A preprocessed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
    // Worklist scratch for `rebuild`; drained (empty) between builds so
    // it does not affect Clone/Debug semantics.
    small: Vec<usize>,
    large: Vec<usize>,
}

impl AliasTable {
    /// Build a table from (unnormalised) `weights`.
    ///
    /// Negative and non-finite weights are clamped to zero. Returns `None`
    /// when the slice is empty or no weight is positive.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut table = AliasTable::empty();
        table.rebuild(weights).then_some(table)
    }

    /// An empty table (no outcomes; [`AliasTable::sample`] must not be
    /// called until a successful [`AliasTable::rebuild`]). Useful for
    /// preallocating a collection of tables that are rebuilt per batch.
    pub fn empty() -> Self {
        AliasTable {
            prob: Vec::new(),
            alias: Vec::new(),
            small: Vec::new(),
            large: Vec::new(),
        }
    }

    /// Rebuild the table in place from (unnormalised) `weights`, reusing
    /// every internal allocation.
    ///
    /// Negative and non-finite weights are clamped to zero. Returns
    /// `false` — leaving the table empty — when the slice is empty or no
    /// weight is positive.
    pub fn rebuild(&mut self, weights: &[f64]) -> bool {
        let n = weights.len();
        let prob = &mut self.prob;
        prob.clear();
        prob.extend(
            weights
                .iter()
                .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }),
        );
        let total: f64 = prob.iter().sum();
        if n == 0 || total <= 0.0 {
            prob.clear();
            self.alias.clear();
            return false;
        }
        // Scale so the average cell is exactly 1. `prob` doubles as the
        // residual-mass array during the build: a cell's residual is
        // final once it leaves the worklists, which is exactly when its
        // `prob` entry stops being touched.
        let scale = n as f64 / total;
        for p in prob.iter_mut() {
            *p *= scale;
        }
        self.alias.clear();
        self.alias.resize(n, 0);
        self.small.clear();
        self.large.clear();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                self.small.push(i);
            } else {
                self.large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.large.pop();
            self.alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                self.small.push(l);
            } else {
                self.large.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in self.small.iter().chain(self.large.iter()) {
            prob[i] = 1.0;
            self.alias[i] = i;
        }
        self.small.clear();
        self.large.clear();
        true
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (freshly [`AliasTable::empty`]
    /// or after a failed [`AliasTable::rebuild`]).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let cell = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, f64::NAN]).is_none());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 5]).unwrap();
        assert_eq!(t.len(), 5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let got = c as f64 / n as f64;
            assert!((got - 0.2).abs() < 0.01, "got {got}");
        }
    }

    #[test]
    fn skewed_weights_match_frequencies() {
        let weights = [0.5, 0.0, 8.0, 1.5];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "slot {i}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        // A reused table must be indistinguishable from a fresh one:
        // same prob/alias state, hence the same draws for the same RNG.
        let mut reused = AliasTable::new(&[1.0, 1.0]).unwrap();
        for weights in [
            vec![0.5, 0.0, 8.0, 1.5],
            vec![1.0; 7],
            vec![10.0, 1e-9],
            vec![0.2, 0.3, 0.5],
        ] {
            assert!(reused.rebuild(&weights));
            let fresh = AliasTable::new(&weights).unwrap();
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            for _ in 0..500 {
                assert_eq!(reused.sample(&mut a), fresh.sample(&mut b));
            }
        }
    }

    #[test]
    fn rebuild_to_degenerate_empties_table() {
        let mut t = AliasTable::new(&[1.0, 2.0]).unwrap();
        assert!(!t.rebuild(&[0.0, 0.0]));
        assert!(t.is_empty());
        // And it recovers.
        assert!(t.rebuild(&[3.0]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matches_roulette_on_same_weights() {
        // Both samplers must approximate the same distribution.
        let weights = [2.0, 3.0, 5.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let n = 100_000;
        let mut alias_counts = [0usize; 3];
        for _ in 0..n {
            alias_counts[t.sample(&mut rng)] += 1;
        }
        let mut wheel_counts = [0usize; 3];
        for _ in 0..n {
            wheel_counts[crate::roulette::roulette_pick(&weights, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let a = alias_counts[i] as f64 / n as f64;
            let w = wheel_counts[i] as f64 / n as f64;
            assert!((a - w).abs() < 0.015, "slot {i}: alias {a} vs wheel {w}");
        }
    }
}
