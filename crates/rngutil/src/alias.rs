//! Vose's alias method: O(1) sampling from a fixed discrete distribution
//! after O(n) preprocessing.
//!
//! The roulette wheel costs O(log n) per spin; when one distribution is
//! sampled very many times (e.g. drawing the GA's mating pool from a
//! fitness vector, or workload generators drawing thousands of grid-point
//! counts), the alias table is the asymptotically optimal tool.

use rand::Rng;

/// A preprocessed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build a table from (unnormalised) `weights`.
    ///
    /// Negative and non-finite weights are clamped to zero. Returns `None`
    /// when the slice is empty or no weight is positive.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        let clamped: Vec<f64> = weights
            .iter()
            .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
            .collect();
        let total: f64 = clamped.iter().sum();
        if n == 0 || total <= 0.0 {
            return None;
        }
        // Scale so the average cell is exactly 1.
        let scaled: Vec<f64> = clamped.iter().map(|w| w * n as f64 / total).collect();

        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        let mut rem = scaled;
        for (i, &p) in rem.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = rem[s];
            alias[s] = l;
            rem[l] = (rem[l] + rem[s]) - 1.0;
            if rem[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never constructed; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let cell = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, f64::NAN]).is_none());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 5]).unwrap();
        assert_eq!(t.len(), 5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let got = c as f64 / n as f64;
            assert!((got - 0.2).abs() < 0.01, "got {got}");
        }
    }

    #[test]
    fn skewed_weights_match_frequencies() {
        let weights = [0.5, 0.0, 8.0, 1.5];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "slot {i}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn matches_roulette_on_same_weights() {
        // Both samplers must approximate the same distribution.
        let weights = [2.0, 3.0, 5.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let n = 100_000;
        let mut alias_counts = [0usize; 3];
        for _ in 0..n {
            alias_counts[t.sample(&mut rng)] += 1;
        }
        let mut wheel_counts = [0usize; 3];
        for _ in 0..n {
            wheel_counts[crate::roulette::roulette_pick(&weights, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let a = alias_counts[i] as f64 / n as f64;
            let w = wheel_counts[i] as f64 / n as f64;
            assert!((a - w).abs() < 0.015, "slot {i}: alias {a} vs wheel {w}");
        }
    }
}
