//! End-to-end acceptance check for the harness: deliberately break the
//! evaluator (drop Eq. 1's communication term, the classic "forgot the
//! network" bug) and confirm the differential oracle catches it on the
//! CI corpus and the shrinker reduces the failure to a small witness.

use match_core::MappingInstance;
use match_verify::corpus::{build, CorpusKind};
use match_verify::{evaluator_disagreement, shrink_instance};

/// Eq. 1 with the communication sum deleted.
fn buggy_exec_time(inst: &MappingInstance, mapping: &[usize]) -> f64 {
    let mut loads = vec![0.0; inst.n_resources()];
    for t in 0..inst.n_tasks() {
        loads[mapping[t]] += inst.computation(t) * inst.processing_cost(mapping[t]);
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[test]
fn dropped_communication_term_is_caught_and_shrunk() {
    let corpus = build(CorpusKind::Ci, 2005);
    let subject = |i: &MappingInstance, m: &[usize]| buggy_exec_time(i, m);

    let mut caught = 0;
    for c in &corpus {
        let inst = c.instance();
        if evaluator_disagreement(&inst, &subject, 48, c.seed).is_none() {
            continue;
        }
        caught += 1;

        let fails = |tig: &match_graph::TaskGraph, res: &match_graph::ResourceGraph| {
            let small = MappingInstance::new(tig, res);
            evaluator_disagreement(&small, &subject, 48, c.seed)
        };
        let witness = shrink_instance(&c.tig, &c.resources, &fails)
            .expect("disagreement must reproduce through the shrinker");
        assert!(
            witness.tig.len() <= 8,
            "{}: witness has {} tasks, expected <= 8",
            c.name,
            witness.tig.len()
        );
        // A shrunken witness still needs at least one interaction —
        // without an edge the dropped term would be invisible.
        assert!(
            witness.tig.graph().edge_count() >= 1,
            "{}: witness lost the communicating pair",
            c.name
        );
        assert!(
            witness.render().contains("oracle"),
            "witness must carry the disagreement narrative"
        );
    }
    assert_eq!(
        caught,
        corpus.len(),
        "the dropped term must be visible on every CI corpus instance"
    );
}

#[test]
fn correct_evaluator_survives_the_same_hunt() {
    let corpus = build(CorpusKind::Ci, 2005);
    for c in &corpus {
        let inst = c.instance();
        assert!(
            evaluator_disagreement(&inst, &|i, m| match_core::exec_time(i, m), 48, c.seed)
                .is_none(),
            "{}: the real evaluator must match the oracle",
            c.name
        );
    }
}
