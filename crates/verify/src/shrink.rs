//! A minimising instance shrinker: when a differential check fails on a
//! generated instance, greedily drop tasks and edges while the failure
//! still reproduces, so the report carries a small witness instead of a
//! 50-node blob (delta debugging over graphs).

use match_graph::io::to_text;
use match_graph::{Graph, ResourceGraph, TaskGraph};

/// The failing predicate the shrinker minimises over: `Some(detail)`
/// when the (tig, resources) pair still reproduces the failure.
pub type FailurePredicate<'a> = dyn Fn(&TaskGraph, &ResourceGraph) -> Option<String> + 'a;

/// A minimised failing instance plus the failure it reproduces.
pub struct Witness {
    /// The shrunken task graph.
    pub tig: TaskGraph,
    /// The shrunken resource graph.
    pub resources: ResourceGraph,
    /// The predicate's detail on the shrunken instance.
    pub detail: String,
}

impl Witness {
    /// Render the witness in the repo's instance text format, ready to
    /// paste into `matchctl solve --tig/--platform` for replay.
    pub fn render(&self) -> String {
        format!(
            "witness instance ({} tasks, {} resources): {}\n--- TIG ---\n{}--- platform ---\n{}",
            self.tig.len(),
            self.resources.len(),
            self.detail,
            to_text(self.tig.graph()),
            to_text(self.resources.graph()),
        )
    }
}

/// Rebuild `g` without node `v` (remaining nodes keep their relative
/// order; incident edges vanish).
fn drop_node(g: &Graph, v: usize) -> Option<Graph> {
    let weights: Vec<f64> = (0..g.node_count())
        .filter(|&u| u != v)
        .map(|u| g.node_weight(u))
        .collect();
    let mut out = Graph::from_node_weights(weights).ok()?;
    let reindex = |u: usize| if u > v { u - 1 } else { u };
    for (a, b, w) in g.edges() {
        if a != v && b != v {
            out.add_edge(reindex(a), reindex(b), w).ok()?;
        }
    }
    Some(out)
}

/// Rebuild `g` without the edge `(a, b)`.
fn drop_edge(g: &Graph, a: usize, b: usize) -> Option<Graph> {
    let weights: Vec<f64> = (0..g.node_count()).map(|u| g.node_weight(u)).collect();
    let mut out = Graph::from_node_weights(weights).ok()?;
    for (u, v, w) in g.edges() {
        if (u, v) != (a, b) && (v, u) != (a, b) {
            out.add_edge(u, v, w).ok()?;
        }
    }
    Some(out)
}

/// Greedily minimise a failing instance.
///
/// `fails` must return `Some(..)` for the input pair, otherwise `None`
/// is returned (nothing to shrink). On square instances task `v` and
/// resource `v` are dropped together so the instance stays square; on
/// rectangular instances only tasks are dropped. After node removal
/// stalls, single TIG edges are dropped the same way. The result is
/// 1-minimal with respect to these two operations.
pub fn shrink_instance(
    tig: &TaskGraph,
    resources: &ResourceGraph,
    fails: &FailurePredicate<'_>,
) -> Option<Witness> {
    let mut detail = fails(tig, resources)?;
    let mut tig = tig.clone();
    let mut resources = resources.clone();
    let square = tig.len() == resources.len();

    let mut progress = true;
    while progress {
        progress = false;
        // Pass 1: drop a task (and its same-index resource when square).
        let mut v = 0;
        while tig.len() > 2 && v < tig.len() {
            let candidate_tig = drop_node(tig.graph(), v).and_then(|g| TaskGraph::new(g).ok());
            let candidate_res = if square {
                drop_node(resources.graph(), v).and_then(|g| ResourceGraph::new(g).ok())
            } else {
                Some(resources.clone())
            };
            match (candidate_tig, candidate_res) {
                (Some(t), Some(r)) => {
                    if let Some(d) = fails(&t, &r) {
                        tig = t;
                        resources = r;
                        detail = d;
                        progress = true;
                        // Same index now names the next node; do not advance.
                    } else {
                        v += 1;
                    }
                }
                _ => v += 1,
            }
        }
        // Pass 2: drop single TIG edges.
        let edges: Vec<(usize, usize)> = tig.graph().edges().map(|(a, b, _)| (a, b)).collect();
        for (a, b) in edges {
            let Some(candidate) = drop_edge(tig.graph(), a, b).and_then(|g| TaskGraph::new(g).ok())
            else {
                continue;
            };
            if let Some(d) = fails(&candidate, &resources) {
                tig = candidate;
                detail = d;
                progress = true;
            }
        }
    }

    Some(Witness {
        tig,
        resources,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(n: usize, seed: u64) -> (TaskGraph, ResourceGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceGenerator::paper_family(n).generate(&mut rng);
        (p.tig, p.resources)
    }

    #[test]
    fn shrinks_to_a_small_witness_when_failure_depends_on_one_edge() {
        let (tig, res) = pair(12, 3);
        // "Failure" whenever the TIG still has any edge with volume above
        // the median — reproduces down to a single heavy edge.
        let threshold = {
            let mut vols: Vec<f64> = tig.graph().edges().map(|(_, _, w)| w).collect();
            vols.sort_by(f64::total_cmp);
            vols[vols.len() / 2]
        };
        let fails = move |t: &TaskGraph, _r: &ResourceGraph| {
            t.graph()
                .edges()
                .any(|(_, _, w)| w > threshold)
                .then(|| "heavy edge survives".to_string())
        };
        let witness = shrink_instance(&tig, &res, &fails).expect("input must fail");
        assert!(witness.tig.len() <= 4, "got {} tasks", witness.tig.len());
        assert_eq!(witness.tig.len(), witness.resources.len(), "stays square");
        assert!(fails(&witness.tig, &witness.resources).is_some());
        assert!(witness.render().contains("--- TIG ---"));
    }

    #[test]
    fn non_failing_input_yields_none() {
        let (tig, res) = pair(6, 4);
        assert!(shrink_instance(&tig, &res, &|_, _| None).is_none());
    }

    #[test]
    fn rectangular_instances_keep_their_resources() {
        let mut rng = StdRng::seed_from_u64(9);
        use match_graph::gen::paper::PaperFamilyConfig;
        let tig = PaperFamilyConfig::new(10).generate_tig(&mut rng);
        let res = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let witness = shrink_instance(&tig, &res, &|t, _| {
            (t.len() >= 3).then(|| "still big".to_string())
        })
        .unwrap();
        assert_eq!(witness.resources.len(), 4);
        assert_eq!(witness.tig.len(), 3);
    }
}
