//! Metamorphic checks: transformations of an instance with a known,
//! provable effect on Eq. 1/Eq. 2 costs. Each check applies the
//! transformation to every corpus instance and asserts the predicted
//! relation — for relabelings the cost is preserved, for uniform
//! weight scaling it scales by exactly λ (λ a power of two, so the
//! float products and sums scale without rounding), for zero-weight
//! edge insertion it is bit-identical, and for a processing-cost bump
//! it is weakly monotone.

use crate::corpus::CorpusInstance;
use crate::report::{CheckResult, Pillar};
use match_core::{exec_time, MappingInstance, MatchConfig, Matcher, SamplerMode};
use match_ga::{FastMapGa, GaConfig};
use match_graph::{Graph, ResourceGraph, TaskGraph};
use match_rngutil::{random_permutation, rng_from};
use rand::rngs::StdRng;
use rand::Rng;

/// The uniform weight-scaling factor. A power of two, so every product
/// and sum in Eq. 1 scales exactly and the metamorphic relation holds
/// bit-for-bit, not merely within tolerance.
pub const SCALE_LAMBDA: f64 = 4.0;

/// Random mappings evaluated per instance and transformation.
const MAPPING_TRIALS: usize = 24;

/// Rebuild a graph with transformed node weights and edges.
fn rebuild(
    node_weights: Vec<f64>,
    edges: impl Iterator<Item = (usize, usize, f64)>,
) -> Option<Graph> {
    let mut g = Graph::from_node_weights(node_weights).ok()?;
    for (u, v, w) in edges {
        g.add_edge(u, v, w).ok()?;
    }
    Some(g)
}

fn inverse(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Draw a random (assignment-model) mapping for `inst`.
fn random_mapping(inst: &MappingInstance, rng: &mut StdRng) -> Vec<usize> {
    (0..inst.n_tasks())
        .map(|_| rng.random_range(0..inst.n_resources()))
        .collect()
}

fn summarize(name: &str, failures: Vec<String>) -> CheckResult {
    if failures.is_empty() {
        CheckResult::pass(Pillar::Metamorphic, name)
    } else {
        CheckResult::fail(Pillar::Metamorphic, name, failures.join("\n"))
    }
}

/// Relabeling tasks must not change any mapping's cost: new task `j`
/// is old task `perm[j]`, so the relabeled mapping `m'[j] = m[perm[j]]`
/// places every original task on its original resource.
fn relabel_tasks(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus {
        let inst = c.instance();
        let mut rng = rng_from(c.seed, 0x21);
        let perm = random_permutation(c.tig.len(), &mut rng);
        let inv = inverse(&perm);
        let g = c.tig.graph();
        let relabeled = rebuild(
            perm.iter().map(|&old| g.node_weight(old)).collect(),
            g.edges().map(|(a, b, w)| (inv[a], inv[b], w)),
        )
        .and_then(|g| TaskGraph::new(g).ok());
        let Some(tig2) = relabeled else {
            failures.push(format!("{}: relabeled TIG failed to build", c.name));
            continue;
        };
        let inst2 = MappingInstance::new(&tig2, &c.resources);
        for _ in 0..MAPPING_TRIALS {
            let m = random_mapping(&inst, &mut rng);
            let m2: Vec<usize> = perm.iter().map(|&old| m[old]).collect();
            let (a, b) = (exec_time(&inst, &m), exec_time(&inst2, &m2));
            if !crate::oracle::approx_eq(a, b, crate::oracle::ORACLE_REL_TOL) {
                failures.push(format!(
                    "{}: task relabeling changed the cost ({a} -> {b}) for mapping {m:?}",
                    c.name
                ));
                break;
            }
        }
    }
    summarize("relabel/tasks", failures)
}

/// Relabeling resources must not change any mapping's cost: new
/// resource `k` is old resource `perm[k]`, so `m'[t] = inv[m[t]]`.
fn relabel_resources(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus {
        let inst = c.instance();
        let mut rng = rng_from(c.seed, 0x22);
        let perm = random_permutation(c.resources.len(), &mut rng);
        let inv = inverse(&perm);
        let g = c.resources.graph();
        let relabeled = rebuild(
            perm.iter().map(|&old| g.node_weight(old)).collect(),
            g.edges().map(|(a, b, w)| (inv[a], inv[b], w)),
        )
        .and_then(|g| ResourceGraph::new(g).ok());
        let Some(res2) = relabeled else {
            failures.push(format!("{}: relabeled platform failed to build", c.name));
            continue;
        };
        let inst2 = MappingInstance::new(&c.tig, &res2);
        for _ in 0..MAPPING_TRIALS {
            let m = random_mapping(&inst, &mut rng);
            let m2: Vec<usize> = m.iter().map(|&s| inv[s]).collect();
            let (a, b) = (exec_time(&inst, &m), exec_time(&inst2, &m2));
            if !crate::oracle::approx_eq(a, b, crate::oracle::ORACLE_REL_TOL) {
                failures.push(format!(
                    "{}: resource relabeling changed the cost ({a} -> {b}) for mapping {m:?}",
                    c.name
                ));
                break;
            }
        }
    }
    summarize("relabel/resources", failures)
}

/// Scale every TIG weight (computation and communication volume) by
/// [`SCALE_LAMBDA`]: each Eq. 1 term is `tig-weight × platform-cost`,
/// so every load and hence the makespan scales by exactly λ.
fn scale_weights(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus {
        let inst = c.instance();
        let g = c.tig.graph();
        let scaled = rebuild(
            (0..g.node_count())
                .map(|t| g.node_weight(t) * SCALE_LAMBDA)
                .collect(),
            g.edges().map(|(a, b, w)| (a, b, w * SCALE_LAMBDA)),
        )
        .and_then(|g| TaskGraph::new(g).ok());
        let Some(tig2) = scaled else {
            failures.push(format!("{}: scaled TIG failed to build", c.name));
            continue;
        };
        let inst2 = MappingInstance::new(&tig2, &c.resources);
        let mut rng = rng_from(c.seed, 0x23);
        for _ in 0..MAPPING_TRIALS {
            let m = random_mapping(&inst, &mut rng);
            let (a, b) = (exec_time(&inst, &m), exec_time(&inst2, &m));
            if (a * SCALE_LAMBDA).to_bits() != b.to_bits() {
                failures.push(format!(
                    "{}: λ-scaling is not exact ({a} * {SCALE_LAMBDA} != {b}) for mapping {m:?}",
                    c.name
                ));
                break;
            }
        }
        // Solver-level: with the elite threshold compared exactly
        // (`gamma_tol: 0`) the CE trajectory depends only on cost
        // *order*, which exact λ-scaling preserves — same seed must
        // yield the same mapping with the cost scaled by exactly λ.
        if c.is_square() {
            let cfg = MatchConfig {
                threads: 1,
                sampler: SamplerMode::Sequential,
                max_iters: 40,
                gamma_tol: 0.0,
                ..MatchConfig::default()
            };
            let m = Matcher::new(cfg);
            let base = m.run(&inst, &mut rng_from(c.seed, 0x24));
            let scaled = m.run(&inst2, &mut rng_from(c.seed, 0x24));
            if base.mapping.as_slice() != scaled.mapping.as_slice()
                || (base.cost * SCALE_LAMBDA).to_bits() != scaled.cost.to_bits()
            {
                failures.push(format!(
                    "{}: CE trajectory not λ-equivariant (cost {} vs {}, iterations {} vs {})",
                    c.name, base.cost, scaled.cost, base.iterations, scaled.iterations
                ));
            }
        }
    }
    summarize("scale/lambda-equivariance", failures)
}

/// Insert zero-weight edges between non-adjacent task pairs: a
/// zero-volume interaction contributes `0 · link_cost = +0.0` to every
/// load, so costs — and whole solver trajectories — stay bit-identical.
fn zero_weight_edges(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus {
        let n = c.tig.len();
        let mut extra = Vec::new();
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                if c.tig.comm_volume(a, b) == 0.0 {
                    extra.push((a, b, 0.0));
                    if extra.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        if extra.is_empty() {
            continue; // complete TIG: nothing to insert
        }
        let g = c.tig.graph();
        let padded = rebuild(
            (0..g.node_count()).map(|t| g.node_weight(t)).collect(),
            g.edges().chain(extra.iter().copied()),
        )
        .and_then(|g| TaskGraph::new(g).ok());
        let Some(tig2) = padded else {
            failures.push(format!("{}: zero-edge TIG failed to build", c.name));
            continue;
        };
        let inst = c.instance();
        let inst2 = MappingInstance::new(&tig2, &c.resources);
        let mut rng = rng_from(c.seed, 0x25);
        for _ in 0..MAPPING_TRIALS {
            let m = random_mapping(&inst, &mut rng);
            let (a, b) = (exec_time(&inst, &m), exec_time(&inst2, &m));
            if a.to_bits() != b.to_bits() {
                failures.push(format!(
                    "{}: zero-weight edge changed the cost ({a} -> {b}) for mapping {m:?}",
                    c.name
                ));
                break;
            }
        }
        if c.is_square() {
            // Whole-trajectory bit-identity for both solver families.
            let cfg = MatchConfig {
                threads: 1,
                sampler: SamplerMode::Sequential,
                max_iters: 40,
                ..MatchConfig::default()
            };
            let m = Matcher::new(cfg);
            let base = m.run(&inst, &mut rng_from(c.seed, 0x26));
            let padded = m.run(&inst2, &mut rng_from(c.seed, 0x26));
            if base.mapping.as_slice() != padded.mapping.as_slice()
                || base.cost.to_bits() != padded.cost.to_bits()
                || base.iterations != padded.iterations
            {
                failures.push(format!(
                    "{}: zero-weight edge perturbed the CE trajectory",
                    c.name
                ));
            }
            let cfg = GaConfig {
                population: 32,
                generations: 20,
                threads: 1,
                sampler: SamplerMode::Sequential,
                ..GaConfig::paper_default()
            };
            let ga = FastMapGa::new(cfg);
            let base = ga.run(&inst, &mut rng_from(c.seed, 0x27));
            let padded = ga.run(&inst2, &mut rng_from(c.seed, 0x27));
            if base.outcome.mapping.as_slice() != padded.outcome.mapping.as_slice()
                || base.outcome.cost.to_bits() != padded.outcome.cost.to_bits()
            {
                failures.push(format!(
                    "{}: zero-weight edge perturbed the GA trajectory",
                    c.name
                ));
            }
        }
    }
    summarize("zero-edge/bit-identity", failures)
}

/// Making one resource slower can never make any fixed mapping faster:
/// bump resource 0's processing cost and assert weak monotonicity.
fn resource_cost_monotonicity(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus {
        let g = c.resources.graph();
        let bumped = rebuild(
            (0..g.node_count())
                .map(|s| {
                    let w = g.node_weight(s);
                    if s == 0 {
                        w * 1.5
                    } else {
                        w
                    }
                })
                .collect(),
            g.edges(),
        )
        .and_then(|g| ResourceGraph::new(g).ok());
        let Some(res2) = bumped else {
            failures.push(format!("{}: bumped platform failed to build", c.name));
            continue;
        };
        let inst = c.instance();
        let inst2 = MappingInstance::new(&c.tig, &res2);
        let mut rng = rng_from(c.seed, 0x28);
        for _ in 0..MAPPING_TRIALS {
            let m = random_mapping(&inst, &mut rng);
            let (a, b) = (exec_time(&inst, &m), exec_time(&inst2, &m));
            if b < a {
                failures.push(format!(
                    "{}: slowing resource 0 *improved* mapping {m:?} ({a} -> {b})",
                    c.name
                ));
                break;
            }
        }
    }
    summarize("monotone/resource-cost", failures)
}

/// Run every metamorphic check over the corpus.
pub fn run_checks(corpus: &[CorpusInstance]) -> Vec<CheckResult> {
    vec![
        relabel_tasks(corpus),
        relabel_resources(corpus),
        scale_weights(corpus),
        zero_weight_edges(corpus),
        resource_cost_monotonicity(corpus),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build, CorpusKind};

    #[test]
    fn smoke_corpus_passes_every_metamorphic_check() {
        let corpus = build(CorpusKind::Smoke, 2005);
        let checks = run_checks(&corpus);
        assert_eq!(checks.len(), 5);
        for check in &checks {
            assert!(check.passed, "{}: {}", check.name, check.details);
        }
    }

    #[test]
    fn scaling_check_catches_a_non_homogeneous_evaluator() {
        // Feed the λ relation a cost with an additive constant: the
        // exact-scaling assertion must reject it. (Uses the check's
        // internals indirectly: a corpus whose evaluator is fine passes,
        // so here we just assert the relation itself is sharp.)
        let a: f64 = 1.25;
        assert_eq!((a * SCALE_LAMBDA).to_bits(), 5.0f64.to_bits());
        assert_ne!(((a + 0.1) * SCALE_LAMBDA).to_bits(), 5.0f64.to_bits());
    }
}
