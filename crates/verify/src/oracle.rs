//! An independent re-derivation of the paper's cost model (Eq. 1 /
//! Eq. 2), used as the reference against which `match_core::exec_time`
//! is differentially checked.
//!
//! The implementation is deliberately *not* shared with
//! [`match_core::cost`]: it accumulates processing and communication
//! loads in separate passes and different order, so a bug in either
//! implementation (a dropped term, a transposed index) shows up as a
//! disagreement instead of cancelling out. Floating-point sums in a
//! different order differ in the last bits, hence the relative
//! tolerance in [`approx_eq`].

use match_core::MappingInstance;
use match_rngutil::rng_from;
use rand::Rng;

/// Relative tolerance for oracle-vs-subject comparisons: generous
/// enough for summation-order noise, far below any modelling bug.
pub const ORACLE_REL_TOL: f64 = 1e-9;

/// `|a - b| <= tol * max(1, |a|, |b|)`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Eq. 1 from scratch: the execution time every resource would take
/// under `mapping` (tasks may share a resource — the general
/// assignment model).
///
/// Processing: `Σ_{t on s} W^t · w_s`. Communication: `Σ_{t on s}
/// Σ_{a ~ t, a off s} C^{t,a} · c_{s, m(a)}`; co-located neighbours
/// are free.
pub fn oracle_loads(inst: &MappingInstance, mapping: &[usize]) -> Vec<f64> {
    assert_eq!(mapping.len(), inst.n_tasks(), "mapping length mismatch");
    let mut processing = vec![0.0; inst.n_resources()];
    let mut communication = vec![0.0; inst.n_resources()];
    for t in 0..inst.n_tasks() {
        let s = mapping[t];
        processing[s] += inst.computation(t) * inst.processing_cost(s);
        for (a, volume) in inst.interactions(t) {
            let b = mapping[a];
            if b != s {
                communication[s] += volume * inst.link_cost(s, b);
            }
        }
    }
    processing
        .iter()
        .zip(&communication)
        .map(|(p, c)| p + c)
        .collect()
}

/// Eq. 2 from scratch: the makespan is the slowest resource.
pub fn oracle_makespan(inst: &MappingInstance, mapping: &[usize]) -> f64 {
    oracle_loads(inst, mapping).into_iter().fold(0.0, f64::max)
}

/// Hunt for a mapping on which `subject` disagrees with the oracle.
///
/// Draws `trials` random assignments (and, on square instances, random
/// permutations) from a stream derived from `seed`, evaluates each
/// through both implementations, and returns a description of the
/// first disagreement — or `None` when the subject matches the oracle
/// everywhere. This is the predicate the instance shrinker minimises
/// over when a differential failure needs a small witness.
pub fn evaluator_disagreement(
    inst: &MappingInstance,
    subject: &dyn Fn(&MappingInstance, &[usize]) -> f64,
    trials: usize,
    seed: u64,
) -> Option<String> {
    if inst.n_tasks() == 0 || inst.n_resources() == 0 {
        return None;
    }
    let mut rng = rng_from(seed, 0x0eac);
    for trial in 0..trials {
        let mapping: Vec<usize> = if inst.is_square() && trial % 2 == 0 {
            match_rngutil::random_permutation(inst.n_tasks(), &mut rng)
        } else {
            (0..inst.n_tasks())
                .map(|_| rng.random_range(0..inst.n_resources()))
                .collect()
        };
        let got = subject(inst, &mapping);
        let want = oracle_makespan(inst, &mapping);
        if !approx_eq(got, want, ORACLE_REL_TOL) {
            return Some(format!(
                "mapping {mapping:?}: subject reports {got}, Eq. 1/Eq. 2 oracle says {want}"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::InstanceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn oracle_agrees_with_exec_time_on_permutations_and_assignments() {
        let inst = instance(9, 3);
        assert!(
            evaluator_disagreement(&inst, &|i, m| exec_time(i, m), 64, 11).is_none(),
            "exec_time must match the independent Eq. 1/Eq. 2 oracle"
        );
    }

    #[test]
    fn oracle_catches_a_dropped_communication_term() {
        let inst = instance(8, 5);
        // A subject that forgets Eq. 1's communication sum.
        let buggy = |i: &MappingInstance, m: &[usize]| {
            let mut loads = vec![0.0; i.n_resources()];
            for t in 0..i.n_tasks() {
                loads[m[t]] += i.computation(t) * i.processing_cost(m[t]);
            }
            loads.into_iter().fold(0.0, f64::max)
        };
        assert!(evaluator_disagreement(&inst, &buggy, 64, 11).is_some());
    }

    #[test]
    fn approx_eq_scales_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
