//! # match-verify
//!
//! The workspace's correctness harness: one entry point
//! ([`run_verify`]) that sweeps a generated instance corpus through
//! three pillars of checks and renders a grouped report.
//!
//! 1. **Differential** ([`differential`]) — the same instance and seed
//!    pushed through solver pairs whose documented relationship is then
//!    asserted: Sequential-sampler bit-identity across thread counts,
//!    Batched-pipeline thread invariance, batched-vs-sequential quality
//!    parity, and agreement of every reported cost with an independent
//!    Eq. 1/Eq. 2 re-derivation ([`oracle`]).
//! 2. **Metamorphic** ([`metamorphic`]) — instance transformations with
//!    provable cost effects: task/resource relabeling preserves cost,
//!    uniform λ-scaling scales it exactly, zero-weight edges are inert
//!    down to the bit level, slowing a resource never helps. The
//!    [`dynamic`] module adds incremental re-mapping contracts under
//!    the same pillar: an empty event batch is bit-identical to not
//!    re-mapping, a μ = 0 cold re-map equals the cold solver, and the
//!    migration ledger (`total = cost + μ·migrated`) balances exactly.
//! 3. **Golden trajectory** ([`golden`]) — committed fixtures pin the
//!    per-iteration best-cost sequence of representative solver
//!    configurations; drift is rendered as a first-divergence diff.
//!
//! Failures on generated instances are minimised by the instance
//! shrinker ([`shrink`]) before they reach the report, so a witness is
//! a handful of tasks, not a 50-node dump.
//!
//! `matchctl verify` is the CLI face of this crate; the same checks run
//! in `cargo test` through each module's test suite (on the smoke
//! corpus, to keep test wall-clock sane).

pub mod corpus;
pub mod differential;
pub mod dynamic;
pub mod golden;
pub mod metamorphic;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use corpus::{
    build as build_corpus, build_large as build_large_corpus, CorpusInstance, CorpusKind,
};
pub use oracle::{approx_eq, evaluator_disagreement, oracle_loads, oracle_makespan};
pub use report::{CheckResult, Pillar, VerifyReport};
pub use shrink::{shrink_instance, Witness};

use std::path::PathBuf;

/// What to run and against which fixtures.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Which corpus to sweep.
    pub corpus: CorpusKind,
    /// Fixture directory; `None` resolves via
    /// [`golden::default_fixture_dir`].
    pub fixtures_dir: Option<PathBuf>,
    /// Rewrite the golden fixtures instead of checking them.
    pub update_golden: bool,
    /// Master seed the corpus instances and run seeds derive from.
    pub master_seed: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            corpus: CorpusKind::default(),
            fixtures_dir: None,
            update_golden: false,
            master_seed: DEFAULT_MASTER_SEED,
        }
    }
}

/// The default corpus master seed (the paper's publication year).
pub const DEFAULT_MASTER_SEED: u64 = 2005;

/// Run the full harness and collect a report.
pub fn run_verify(opts: &VerifyOptions) -> VerifyReport {
    let corpus = corpus::build(opts.corpus, opts.master_seed);
    let mut checks = Vec::new();
    checks.extend(differential::run_checks(&corpus));
    // The large-n companion corpus only feeds the multilevel checks;
    // the flat-solver sweeps above would never finish at these sizes.
    let large = corpus::build_large(opts.corpus, opts.master_seed);
    checks.extend(differential::run_large_checks(&large));
    checks.extend(metamorphic::run_checks(&corpus));
    checks.extend(dynamic::run_checks(&corpus));

    let dir = opts
        .fixtures_dir
        .clone()
        .unwrap_or_else(golden::default_fixture_dir);
    if opts.update_golden {
        match golden::update_fixtures(&dir) {
            Ok(written) => checks.push(CheckResult::pass(
                Pillar::Golden,
                format!("golden/update ({} fixtures rewritten)", written.len()),
            )),
            Err(e) => checks.push(CheckResult::fail(
                Pillar::Golden,
                "golden/update",
                format!("cannot write fixtures under {}: {e}", dir.display()),
            )),
        }
    } else {
        checks.extend(golden::run_checks(&dir));
    }

    VerifyReport {
        checks,
        corpus: match opts.corpus {
            CorpusKind::Smoke => "smoke",
            CorpusKind::Ci => "ci",
            CorpusKind::Full => "full",
        }
        .to_string(),
        instances: corpus.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_verify_passes_end_to_end() {
        let report = run_verify(&VerifyOptions {
            corpus: CorpusKind::Smoke,
            ..VerifyOptions::default()
        });
        assert!(report.passed(), "{}", report.render());
        assert!(report.instances >= 2);
        // All three pillars must be represented.
        for pillar in [Pillar::Differential, Pillar::Metamorphic, Pillar::Golden] {
            assert!(
                report.checks.iter().any(|c| c.pillar == pillar),
                "missing pillar {pillar}"
            );
        }
        let text = report.render();
        assert!(text.contains("all checks passed"), "{text}");
    }

    #[test]
    fn update_golden_writes_into_a_scratch_dir() {
        let dir = std::env::temp_dir().join("match-verify-update-test");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_verify(&VerifyOptions {
            corpus: CorpusKind::Smoke,
            fixtures_dir: Some(dir.clone()),
            update_golden: true,
            master_seed: DEFAULT_MASTER_SEED,
        });
        assert!(report.passed(), "{}", report.render());
        // The freshly written fixtures must then verify clean.
        let recheck = run_verify(&VerifyOptions {
            corpus: CorpusKind::Smoke,
            fixtures_dir: Some(dir.clone()),
            update_golden: false,
            master_seed: DEFAULT_MASTER_SEED,
        });
        assert!(recheck.passed(), "{}", recheck.render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
