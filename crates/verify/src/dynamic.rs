//! Metamorphic checks for incremental re-mapping ([`match_core::remap`]):
//! the contracts the module documents, asserted over every square
//! corpus instance instead of merely stated.
//!
//! * **Empty event batch** — re-mapping with nothing changed must be
//!   bit-identical to not re-mapping at all: the prior mapping comes
//!   back untouched, zero migrations, and `cost` equals a fresh Eq. 2
//!   evaluation of the prior bit for bit.
//! * **μ = 0 cold parity** — with no prior and no migration charge, the
//!   re-mapper *is* the cold solver: mapping and cost must match
//!   [`Matcher::run`] under the same seed bit for bit.
//! * **Migration accounting** — `migrated` is the Hamming distance from
//!   the prior, `migration_cost` is exactly `μ·migrated` (μ a power of
//!   two, so the product is exact), and `total` is exactly their sum.
//!
//! Reported under [`Pillar::Metamorphic`] as `dynamic/*` checks. RNG
//! streams 0x31–0x34 are reserved here (0x21–0x28 belong to
//! `metamorphic`, 1–19 to `differential`).

use crate::corpus::CorpusInstance;
use crate::report::{CheckResult, Pillar};
use match_core::{
    exec_time, remap_incremental, MatchConfig, Matcher, RemapConfig, RemapStrategy, SamplerMode,
    StopToken,
};
use match_rngutil::rng_from;
use match_telemetry::NullRecorder;

/// Migration weight for the accounting check. A power of two, so
/// `μ · migrated` is exact for every integer migration count.
pub const ACCOUNTING_MU: f64 = 0.5;

/// The CE configuration every dynamic check shares: single-threaded
/// sequential sampling with a short iteration budget, so the cold
/// trajectories being compared are cheap and platform-stable.
fn check_config() -> MatchConfig {
    MatchConfig {
        threads: 1,
        sampler: SamplerMode::Sequential,
        max_iters: 30,
        ..MatchConfig::default()
    }
}

/// A prior mapping for `c`: a short cold CE solve on its own stream.
fn prior_for(c: &CorpusInstance) -> Vec<usize> {
    let inst = c.instance();
    let out = Matcher::new(check_config()).run(&inst, &mut rng_from(c.seed, 0x31));
    out.mapping.as_slice().to_vec()
}

fn summarize(name: &str, failures: Vec<String>) -> CheckResult {
    if failures.is_empty() {
        CheckResult::pass(Pillar::Metamorphic, name)
    } else {
        CheckResult::fail(Pillar::Metamorphic, name, failures.join("\n"))
    }
}

/// An empty event batch under [`RemapStrategy::RefineOnly`] must be
/// bit-identical to not re-mapping: prior returned unchanged, zero
/// migrations and evaluations, `cost` bit-equal to a fresh Eq. 2
/// evaluation of the prior.
fn empty_batch_identity(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let inst = c.instance();
        let prior = prior_for(c);
        let cfg = RemapConfig {
            match_config: check_config(),
            strategy: RemapStrategy::RefineOnly,
            // A non-zero μ must not matter when nothing moves.
            mu: 2.0,
            ..RemapConfig::default()
        };
        let out = remap_incremental(
            &inst,
            Some(&prior),
            &[],
            &cfg,
            &mut rng_from(c.seed, 0x32),
            &mut NullRecorder,
            &StopToken::never(),
        );
        let fresh = exec_time(&inst, &prior);
        if out.mapping.as_slice() != prior.as_slice() {
            failures.push(format!(
                "{}: empty batch rewrote the mapping ({:?} -> {:?})",
                c.name,
                prior,
                out.mapping.as_slice()
            ));
        } else if out.migrated != 0
            || out.migration_cost != 0.0
            || out.evaluations != 0
            || !out.warm
        {
            failures.push(format!(
                "{}: empty batch did work ({} migrated, {} evaluations, warm {})",
                c.name, out.migrated, out.evaluations, out.warm
            ));
        } else if out.cost.to_bits() != fresh.to_bits() || out.total.to_bits() != fresh.to_bits() {
            failures.push(format!(
                "{}: empty-batch cost {} != fresh Eq. 2 evaluation {}",
                c.name, out.cost, fresh
            ));
        }
    }
    summarize("dynamic/empty-batch-identity", failures)
}

/// With no prior and μ = 0 the re-mapper must *be* the cold solver:
/// same seed, bit-identical mapping and cost to [`Matcher::run`].
fn mu_zero_cold_parity(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let inst = c.instance();
        let cfg = RemapConfig {
            match_config: check_config(),
            mu: 0.0,
            ..RemapConfig::default()
        };
        let out = remap_incremental(
            &inst,
            None,
            &[],
            &cfg,
            &mut rng_from(c.seed, 0x33),
            &mut NullRecorder,
            &StopToken::never(),
        );
        let cold = Matcher::new(check_config()).run(&inst, &mut rng_from(c.seed, 0x33));
        if out.warm {
            failures.push(format!("{}: cold fallback claims warm", c.name));
        } else if out.mapping.as_slice() != cold.mapping.as_slice()
            || out.cost.to_bits() != cold.cost.to_bits()
        {
            failures.push(format!(
                "{}: cold fallback diverged from Matcher::run (cost {} vs {})",
                c.name, out.cost, cold.cost
            ));
        } else if out.migration_cost != 0.0 || out.total.to_bits() != out.cost.to_bits() {
            failures.push(format!(
                "{}: μ=0 re-map charged migrations (cost {}, total {})",
                c.name, out.cost, out.total
            ));
        }
    }
    summarize("dynamic/mu-zero-cold-parity", failures)
}

/// The migration ledger must balance exactly: `migrated` is the Hamming
/// distance from the prior, `migration_cost = μ·migrated` bit-exactly
/// (μ a power of two), and `total = cost + migration_cost` bit-exactly.
fn migration_accounting(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let inst = c.instance();
        let prior = prior_for(c);
        let cfg = RemapConfig {
            match_config: check_config(),
            strategy: RemapStrategy::RefineOnly,
            mu: ACCOUNTING_MU,
            ..RemapConfig::default()
        };
        // Refine over the whole task set so swaps actually happen.
        let changed: Vec<usize> = (0..inst.n_tasks()).collect();
        let out = remap_incremental(
            &inst,
            Some(&prior),
            &changed,
            &cfg,
            &mut rng_from(c.seed, 0x34),
            &mut NullRecorder,
            &StopToken::never(),
        );
        let hamming = out
            .mapping
            .as_slice()
            .iter()
            .zip(&prior)
            .filter(|(a, b)| a != b)
            .count();
        if out.migrated != hamming {
            failures.push(format!(
                "{}: migrated {} != Hamming distance {}",
                c.name, out.migrated, hamming
            ));
        } else if out.migration_cost.to_bits() != (ACCOUNTING_MU * hamming as f64).to_bits() {
            failures.push(format!(
                "{}: migration_cost {} != μ·migrated {}",
                c.name,
                out.migration_cost,
                ACCOUNTING_MU * hamming as f64
            ));
        } else if out.total.to_bits() != (out.cost + out.migration_cost).to_bits() {
            failures.push(format!(
                "{}: total {} != cost {} + migration_cost {}",
                c.name, out.total, out.cost, out.migration_cost
            ));
        } else if out.cost.to_bits() != exec_time(&inst, out.mapping.as_slice()).to_bits() {
            failures.push(format!(
                "{}: reported cost {} is not a fresh Eq. 2 evaluation",
                c.name, out.cost
            ));
        }
    }
    summarize("dynamic/migration-accounting", failures)
}

/// Run every dynamic re-mapping check over the corpus.
pub fn run_checks(corpus: &[CorpusInstance]) -> Vec<CheckResult> {
    vec![
        empty_batch_identity(corpus),
        mu_zero_cold_parity(corpus),
        migration_accounting(corpus),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build, CorpusKind};

    #[test]
    fn smoke_corpus_passes_every_dynamic_check() {
        let corpus = build(CorpusKind::Smoke, 2005);
        let checks = run_checks(&corpus);
        assert_eq!(checks.len(), 3);
        for check in &checks {
            assert!(check.passed, "{}: {}", check.name, check.details);
            assert!(check.name.starts_with("dynamic/"), "{}", check.name);
            assert_eq!(check.pillar, Pillar::Metamorphic);
        }
    }

    #[test]
    fn accounting_mu_is_a_power_of_two() {
        // The bit-exactness claim in `migration_accounting` relies on
        // μ·k being exact for integer k; a power of two guarantees it.
        assert_eq!(ACCOUNTING_MU.log2().fract(), 0.0);
    }
}
