//! Differential checks: the same instance and seed pushed through
//! pairs of solver implementations whose documented relationship the
//! harness then asserts — bit-identity for the Sequential sampler
//! across thread counts, thread-count invariance for the Batched
//! pipeline, quality parity between the two streams, and agreement of
//! every reported cost with the independent Eq. 1/Eq. 2 oracle.

use crate::corpus::CorpusInstance;
use crate::oracle::{approx_eq, evaluator_disagreement, oracle_makespan, ORACLE_REL_TOL};
use crate::report::{CheckResult, Pillar};
use crate::shrink::shrink_instance;
use match_ce::StochasticMatrix;
use match_core::{
    exec_time, exec_time_with, EvalBackend, IslandConfig, IslandMatcher, Mapper, MapperOutcome,
    MappingInstance, MatchConfig, Matcher, MultilevelConfig, SamplerMode, StopToken,
};
use match_ga::{FastMapGa, GaConfig};
use match_multilevel::MultilevelMapper;
use match_rngutil::rng_from;
use match_telemetry::NullRecorder;

/// Thread counts every thread-invariance check sweeps.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Batched and sequential pipelines draw different RNG streams, so
/// their final costs differ — but on the corpus's small instances both
/// converge near the optimum. This is the maximum tolerated ratio of
/// the worse to the better cost.
const PARITY_FACTOR: f64 = 1.5;

/// Trials per instance when hunting evaluator-vs-oracle disagreements.
const ORACLE_TRIALS: usize = 48;

fn ce_config(sampler: SamplerMode, threads: usize) -> MatchConfig {
    MatchConfig {
        threads,
        sampler,
        max_iters: 60,
        ..MatchConfig::default()
    }
}

fn ga_config(sampler: SamplerMode, threads: usize) -> GaConfig {
    GaConfig {
        population: 48,
        generations: 30,
        threads,
        sampler,
        ..GaConfig::paper_default()
    }
}

/// Everything that must be identical between two runs claimed to be
/// bit-equal: the mapping, the exact cost bits, and the loop counters.
#[derive(PartialEq, Debug)]
struct RunSignature {
    mapping: Vec<usize>,
    cost_bits: u64,
    iterations: usize,
    evaluations: u64,
}

impl RunSignature {
    fn of(out: &MapperOutcome) -> RunSignature {
        RunSignature {
            mapping: out.mapping.as_slice().to_vec(),
            cost_bits: out.cost.to_bits(),
            iterations: out.iterations,
            evaluations: out.evaluations,
        }
    }
}

/// The invariants every solver outcome must satisfy regardless of
/// which algorithm produced it: a valid assignment (a permutation on
/// square instances), a reported cost that *is* the evaluator's cost
/// for the mapping (no stale best), and evaluator agreement with the
/// independent oracle.
fn check_outcome_invariants(
    inst: &MappingInstance,
    out: &MapperOutcome,
    expect_permutation: bool,
) -> Result<(), String> {
    out.mapping
        .validate(inst)
        .map_err(|e| format!("invalid mapping: {e:?}"))?;
    if expect_permutation && !out.mapping.is_permutation() {
        return Err(format!(
            "square instance but mapping is not a permutation: {:?}",
            out.mapping.as_slice()
        ));
    }
    let recomputed = exec_time(inst, out.mapping.as_slice());
    if out.cost.to_bits() != recomputed.to_bits() {
        return Err(format!(
            "reported cost {} != evaluator recomputation {}",
            out.cost, recomputed
        ));
    }
    let oracle = oracle_makespan(inst, out.mapping.as_slice());
    if !approx_eq(out.cost, oracle, ORACLE_REL_TOL) {
        return Err(format!(
            "reported cost {} disagrees with Eq. 1/Eq. 2 oracle {}",
            out.cost, oracle
        ));
    }
    Ok(())
}

/// Collapse per-instance failure strings into one `CheckResult`.
fn summarize(pillar: Pillar, name: &str, failures: Vec<String>) -> CheckResult {
    if failures.is_empty() {
        CheckResult::pass(pillar, name)
    } else {
        CheckResult::fail(pillar, name, failures.join("\n"))
    }
}

/// A thread-invariance sweep for one square-instance solver family:
/// `run(threads)` must produce the same `RunSignature` for every entry
/// of [`THREAD_SWEEP`], and the outcome must satisfy the shared
/// invariants.
fn thread_invariance<F>(corpus: &[CorpusInstance], name: &str, mut run: F) -> CheckResult
where
    F: FnMut(&CorpusInstance, usize) -> MapperOutcome,
{
    let mut failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let inst = c.instance();
        let baseline = run(c, THREAD_SWEEP[0]);
        if let Err(e) = check_outcome_invariants(&inst, &baseline, true) {
            failures.push(format!("{}: {e}", c.name));
            continue;
        }
        let want = RunSignature::of(&baseline);
        for &threads in &THREAD_SWEEP[1..] {
            let got = RunSignature::of(&run(c, threads));
            if got != want {
                failures.push(format!(
                    "{}: threads={threads} diverged from threads={} \
                     (cost {} vs {}, iterations {} vs {})",
                    c.name,
                    THREAD_SWEEP[0],
                    f64::from_bits(got.cost_bits),
                    f64::from_bits(want.cost_bits),
                    got.iterations,
                    want.iterations,
                ));
            }
        }
    }
    summarize(Pillar::Differential, name, failures)
}

fn ce_run(c: &CorpusInstance, sampler: SamplerMode, threads: usize, stream: u64) -> MapperOutcome {
    let mut rng = rng_from(c.seed, stream);
    Matcher::new(ce_config(sampler, threads))
        .run(&c.instance(), &mut rng)
        .into_mapper_outcome()
}

fn ga_run(c: &CorpusInstance, sampler: SamplerMode, threads: usize, stream: u64) -> MapperOutcome {
    let mut rng = rng_from(c.seed, stream);
    FastMapGa::new(ga_config(sampler, threads))
        .run(&c.instance(), &mut rng)
        .outcome
}

/// Quality parity between two streams of the same algorithm: neither
/// side may be worse than [`PARITY_FACTOR`] times the other.
fn parity_check<F, G>(
    corpus: &[CorpusInstance],
    name: &str,
    mut left: F,
    mut right: G,
) -> CheckResult
where
    F: FnMut(&CorpusInstance) -> f64,
    G: FnMut(&CorpusInstance) -> f64,
{
    let mut failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let (a, b) = (left(c), right(c));
        let (worse, better) = if a > b { (a, b) } else { (b, a) };
        // NaN costs must fail the band, so compare via partial_cmp.
        let within = matches!(
            worse.partial_cmp(&(better * PARITY_FACTOR)),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !within {
            failures.push(format!(
                "{}: costs {a} vs {b} exceed the {PARITY_FACTOR}x parity band",
                c.name
            ));
        }
    }
    summarize(Pillar::Differential, name, failures)
}

/// A determinism + invariants check for solvers without a documented
/// cross-implementation twin: two runs from the same seed must agree
/// bit-for-bit and satisfy the shared invariants.
fn determinism_check<F>(
    corpus: &[CorpusInstance],
    name: &str,
    expect_permutation: bool,
    mut run: F,
) -> CheckResult
where
    F: FnMut(&CorpusInstance) -> Option<MapperOutcome>,
{
    let mut failures = Vec::new();
    for c in corpus {
        let Some(first) = run(c) else { continue };
        let inst = c.instance();
        if let Err(e) = check_outcome_invariants(&inst, &first, expect_permutation) {
            failures.push(format!("{}: {e}", c.name));
            continue;
        }
        let second = run(c).expect("run filter must be deterministic");
        if RunSignature::of(&first) != RunSignature::of(&second) {
            failures.push(format!(
                "{}: two runs from the same seed diverged ({} vs {})",
                c.name, first.cost, second.cost
            ));
        }
    }
    summarize(Pillar::Differential, name, failures)
}

/// The evaluator-vs-oracle sweep. On disagreement the instance is
/// shrunk to a minimal witness before reporting.
fn oracle_agreement(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    // The sweep recomputes Eq. 2 for thousands of sampled mappings, so
    // reuse one load buffer across all of them via `exec_time_with`
    // (the subject is a `&dyn Fn`, hence the `RefCell`).
    let scratch = std::cell::RefCell::new(Vec::new());
    let subject =
        |i: &MappingInstance, m: &[usize]| exec_time_with(i, m, &mut scratch.borrow_mut());
    for c in corpus {
        let inst = c.instance();
        if evaluator_disagreement(&inst, &subject, ORACLE_TRIALS, c.seed).is_some() {
            // Reproduce on progressively smaller instances.
            let fails = |tig: &match_graph::TaskGraph, res: &match_graph::ResourceGraph| {
                let small = MappingInstance::new(tig, res);
                evaluator_disagreement(&small, &subject, ORACLE_TRIALS, c.seed)
            };
            let detail = match shrink_instance(&c.tig, &c.resources, &fails) {
                Some(witness) => witness.render(),
                None => "disagreement did not reproduce under the shrinker".to_string(),
            };
            failures.push(format!(
                "{}: evaluator disagrees with oracle\n{detail}",
                c.name
            ));
        }
    }
    summarize(Pillar::Differential, "evaluator/oracle-agreement", failures)
}

/// Satellite: many-to-one coverage. Every instance runs through
/// [`Matcher::run_many_to_one`]'s assignment model — on square
/// instances too, where the result need not be a bijection (the model
/// allows duplicates), so the shared `Mapping::validate` bijection rule
/// does not apply. What must hold everywhere: in-range targets, a
/// reported cost that is the evaluator's cost bit-for-bit (the same
/// `exec_time` the permutation path uses), oracle agreement, and seeded
/// determinism.
fn many_to_one(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    let mut rectangular = 0usize;
    for c in corpus {
        let inst = c.instance();
        let run = |stream: u64| {
            let mut rng = rng_from(c.seed, stream);
            Matcher::new(ce_config(SamplerMode::Sequential, 1))
                .run_many_to_one(&inst, &mut rng)
                .into_mapper_outcome()
        };
        let out = run(11);
        if !c.is_square() {
            rectangular += 1;
        }
        let assign = out.mapping.as_slice();
        if assign.len() != inst.n_tasks() || assign.iter().any(|&s| s >= inst.n_resources()) {
            failures.push(format!("{}: assignment out of range: {assign:?}", c.name));
            continue;
        }
        let recomputed = exec_time(&inst, assign);
        if out.cost.to_bits() != recomputed.to_bits() {
            failures.push(format!(
                "{}: reported cost {} != evaluator recomputation {}",
                c.name, out.cost, recomputed
            ));
            continue;
        }
        let oracle = oracle_makespan(&inst, assign);
        if !approx_eq(out.cost, oracle, ORACLE_REL_TOL) {
            failures.push(format!(
                "{}: cost {} disagrees with Eq. 1/Eq. 2 oracle {}",
                c.name, out.cost, oracle
            ));
            continue;
        }
        if RunSignature::of(&out) != RunSignature::of(&run(11)) {
            failures.push(format!(
                "{}: many-to-one run is not seed-deterministic",
                c.name
            ));
        }
    }
    if rectangular == 0 {
        failures.push("corpus contains no rectangular instance".to_string());
    }
    summarize(Pillar::Differential, "many-to-one/invariants", failures)
}

/// Forcing the Simd evaluation backend on every corpus instance must
/// reproduce the Scalar backend bit-for-bit — same mapping, same cost
/// bits, same loop counters — through every pipeline that dispatches on
/// [`EvalBackend`]: the batched CE sampler, the batched GA fitness
/// fan-out, and the multilevel coarse solve. Lanes group independent
/// samples and never reassociate the terms of one sample, so any
/// divergence here is a kernel bug, not FP noise.
fn backend_bit_equality(corpus: &[CorpusInstance]) -> CheckResult {
    let mut failures = Vec::new();
    let ce = |c: &CorpusInstance, backend| {
        let cfg = MatchConfig {
            backend,
            ..ce_config(SamplerMode::Batched, 2)
        };
        let mut rng = rng_from(c.seed, 15);
        Matcher::new(cfg)
            .run(&c.instance(), &mut rng)
            .into_mapper_outcome()
    };
    let ga = |c: &CorpusInstance, backend| {
        let cfg = GaConfig {
            backend,
            ..ga_config(SamplerMode::Batched, 2)
        };
        let mut rng = rng_from(c.seed, 16);
        FastMapGa::new(cfg).run(&c.instance(), &mut rng).outcome
    };
    let ml = |c: &CorpusInstance, backend| {
        let cfg = MultilevelConfig {
            backend,
            ..ml_config(2)
        };
        let mut rng = rng_from(c.seed, 17);
        MultilevelMapper::new(cfg).map(&c.instance(), &mut rng)
    };
    for c in corpus {
        // Multilevel accepts every instance; the flat batched pipelines
        // are permutation solvers and need square ones.
        let mut pairs = vec![(
            "multilevel",
            ml(c, EvalBackend::Scalar),
            ml(c, EvalBackend::Simd),
        )];
        if c.is_square() {
            pairs.push((
                "ce-batched",
                ce(c, EvalBackend::Scalar),
                ce(c, EvalBackend::Simd),
            ));
            pairs.push((
                "ga-batched",
                ga(c, EvalBackend::Scalar),
                ga(c, EvalBackend::Simd),
            ));
        }
        for (algo, scalar, simd) in pairs {
            if RunSignature::of(&simd) != RunSignature::of(&scalar) {
                failures.push(format!(
                    "{}: {algo} Simd diverged from Scalar (cost {} vs {})",
                    c.name, simd.cost, scalar.cost
                ));
            }
        }
    }
    summarize(
        Pillar::Differential,
        "backend/simd-vs-scalar-bit-equality",
        failures,
    )
}

/// Run every differential check over the corpus.
pub fn run_checks(corpus: &[CorpusInstance]) -> Vec<CheckResult> {
    let mut checks = Vec::new();

    checks.push(thread_invariance(
        corpus,
        "ce-sequential/thread-invariance",
        |c, threads| ce_run(c, SamplerMode::Sequential, threads, 1),
    ));
    checks.push(thread_invariance(
        corpus,
        "ce-batched/thread-invariance",
        |c, threads| ce_run(c, SamplerMode::Batched, threads, 2),
    ));
    checks.push(parity_check(
        corpus,
        "ce/batched-vs-sequential-parity",
        |c| ce_run(c, SamplerMode::Sequential, 1, 3).cost,
        |c| ce_run(c, SamplerMode::Batched, 2, 3).cost,
    ));

    checks.push(thread_invariance(
        corpus,
        "ga-sequential/thread-invariance",
        |c, threads| ga_run(c, SamplerMode::Sequential, threads, 4),
    ));
    checks.push(thread_invariance(
        corpus,
        "ga-batched/thread-invariance",
        |c, threads| ga_run(c, SamplerMode::Batched, threads, 5),
    ));
    checks.push(parity_check(
        corpus,
        "ga/batched-vs-sequential-parity",
        |c| ga_run(c, SamplerMode::Sequential, 1, 6).cost,
        |c| ga_run(c, SamplerMode::Batched, 2, 6).cost,
    ));

    // The §4 naive penalised ablation wastes samples on non-bijective
    // draws, so it only reliably finds permutations on tiny instances;
    // restrict to n <= 6 with the sample budget the ablation arm uses.
    checks.push(determinism_check(
        corpus,
        "naive-penalized/determinism-and-invariants",
        true,
        |c| {
            (c.is_square() && c.tig.len() <= 6).then(|| {
                let cfg = MatchConfig {
                    sample_size: Some(400),
                    ..ce_config(SamplerMode::Sequential, 1)
                };
                let mut rng = rng_from(c.seed, 8);
                Matcher::new(cfg)
                    .run_naive_penalized(&c.instance(), &mut rng)
                    .into_mapper_outcome()
            })
        },
    ));

    checks.push(determinism_check(
        corpus,
        "islands/determinism-and-invariants",
        true,
        |c| {
            c.is_square().then(|| {
                let cfg = IslandConfig {
                    islands: 2,
                    migration_interval: 3,
                    base: ce_config(SamplerMode::Sequential, 1),
                };
                let mut rng = rng_from(c.seed, 9);
                IslandMatcher::new(cfg).run(&c.instance(), &mut rng)
            })
        },
    ));

    // The multilevel driver on the regular (paper-scale) corpus: the
    // hierarchy degenerates to a single solve-and-refine at these sizes,
    // which is exactly the regime where its cost must match the flat
    // solvers' invariants.
    checks.push(determinism_check(
        corpus,
        "multilevel/determinism-and-invariants-square",
        true,
        |c| {
            c.is_square().then(|| {
                let mut rng = rng_from(c.seed, 12);
                MultilevelMapper::new(ml_config(1)).map(&c.instance(), &mut rng)
            })
        },
    ));
    checks.push(determinism_check(
        corpus,
        "multilevel/determinism-and-invariants-rect",
        false,
        |c| {
            (!c.is_square()).then(|| {
                let mut rng = rng_from(c.seed, 13);
                MultilevelMapper::new(ml_config(1)).map(&c.instance(), &mut rng)
            })
        },
    ));

    checks.push(backend_bit_equality(corpus));
    checks.push(many_to_one(corpus));
    checks.push(oracle_agreement(corpus));
    checks.extend(run_warm_checks(corpus));
    checks
}

/// Warm solve under the batched pipeline: seed the stochastic matrix
/// from `prior` mixed at `alpha`, return the outcome plus the converged
/// matrix.
fn warm_run(
    c: &CorpusInstance,
    threads: usize,
    stream: u64,
    prior: Option<&StochasticMatrix>,
    alpha: f64,
) -> (MapperOutcome, StochasticMatrix) {
    let mut rng = rng_from(c.seed, stream);
    let (outcome, converged) = Matcher::new(ce_config(SamplerMode::Batched, threads))
        .run_warm_controlled(
            &c.instance(),
            &mut rng,
            &mut NullRecorder,
            &StopToken::never(),
            prior,
            alpha,
        );
    (outcome.into_mapper_outcome(), converged)
}

/// The quality band a warm start may cost relative to cold: a prior can
/// steer early sampling, never the verdict. 1.05 rather than a tighter
/// band because the topology corpus entries (grid/torus/fattree/
/// dragonfly) have strongly anisotropic `c_{s,b}` matrices, where a
/// prior converged under a different seed legitimately steers CE into a
/// neighbouring basin a few percent off the cold optimum — the same
/// bound the dynamic re-mapping benchmark gates on.
const WARM_COST_FACTOR: f64 = 1.05;

/// Satellite: the warm-start seam. Three properties per square
/// instance, each against the same cold batched baseline:
///
/// 1. **α = 0 bit-identity** — a warm call with a *real* converged
///    prior but `α = 0` must reproduce the cold run exactly (mapping,
///    cost bits, loop counters): the seam may not perturb the RNG
///    stream or the seed matrix.
/// 2. **Quality parity + oracle** — an `α = 0.5` warm start from a
///    prior converged under a different seed must still satisfy every
///    shared outcome invariant (valid permutation, Eq. 1/Eq. 2 oracle
///    agreement) and land within [`WARM_COST_FACTOR`]× of the cold
///    cost: priors can never degrade answers silently.
/// 3. **Thread invariance** — the warm run's `RunSignature` must be
///    identical across [`THREAD_SWEEP`], like every other batched
///    pipeline.
pub fn run_warm_checks(corpus: &[CorpusInstance]) -> Vec<CheckResult> {
    let mut identity_failures = Vec::new();
    let mut quality_failures = Vec::new();
    let mut thread_failures = Vec::new();
    for c in corpus.iter().filter(|c| c.is_square()) {
        let inst = c.instance();
        // Cold baseline and the prior it converged to.
        let (cold, prior) = warm_run(c, 1, 18, None, 0.0);
        if let Err(e) = check_outcome_invariants(&inst, &cold, true) {
            identity_failures.push(format!("{}: cold baseline: {e}", c.name));
            continue;
        }
        // 1. α = 0 with a real prior supplied: bit-identical to cold.
        let (alpha0, _) = warm_run(c, 1, 18, Some(&prior), 0.0);
        if RunSignature::of(&alpha0) != RunSignature::of(&cold) {
            identity_failures.push(format!(
                "{}: alpha=0 warm run diverged from cold (cost {} vs {}, iterations {} vs {})",
                c.name, alpha0.cost, cold.cost, alpha0.iterations, cold.iterations
            ));
        }
        // 2. α > 0 from a different-seed prior: invariants + parity.
        let (_, other_prior) = warm_run(c, 1, 19, None, 0.0);
        let (warm, _) = warm_run(c, 1, 18, Some(&other_prior), 0.5);
        if let Err(e) = check_outcome_invariants(&inst, &warm, true) {
            quality_failures.push(format!("{}: {e}", c.name));
        } else if warm.cost > cold.cost * WARM_COST_FACTOR {
            quality_failures.push(format!(
                "{}: warm cost {} exceeds {WARM_COST_FACTOR}x cold cost {}",
                c.name, warm.cost, cold.cost
            ));
        }
        // 3. Warm thread invariance at fixed prior and α.
        let want = RunSignature::of(&warm);
        for &threads in &THREAD_SWEEP[1..] {
            let got = RunSignature::of(&warm_run(c, threads, 18, Some(&other_prior), 0.5).0);
            if got != want {
                thread_failures.push(format!(
                    "{}: warm threads={threads} diverged from threads={} \
                     (cost {} vs {}, iterations {} vs {})",
                    c.name,
                    THREAD_SWEEP[0],
                    f64::from_bits(got.cost_bits),
                    f64::from_bits(want.cost_bits),
                    got.iterations,
                    want.iterations,
                ));
            }
        }
    }
    vec![
        summarize(
            Pillar::Differential,
            "ce-warm/alpha0-bit-identity",
            identity_failures,
        ),
        summarize(
            Pillar::Differential,
            "ce-warm/quality-parity-and-oracle",
            quality_failures,
        ),
        summarize(
            Pillar::Differential,
            "ce-warm/thread-invariance",
            thread_failures,
        ),
    ]
}

/// Multilevel configuration the differential checks share. The coarsen
/// target is lowered from the paper-scale default (48) to keep the
/// coarse CE solve affordable on the debug builds the smoke corpus runs
/// under; correctness checks do not care where coarsening stops.
fn ml_config(threads: usize) -> MultilevelConfig {
    MultilevelConfig {
        coarsen_target: 24,
        threads,
        ..MultilevelConfig::default()
    }
}

/// Satellite: the multilevel driver at the scales the flat `2n²`
/// samplers cannot reach. Each instance is built once (the dense link
/// matrix at n = 4096 is ~134 MB — rebuilding it per thread count would
/// dominate the check), then swept for [`THREAD_SWEEP`] bit-identity
/// and the shared validity/recomputation/oracle invariants.
pub fn run_large_checks(large: &[CorpusInstance]) -> Vec<CheckResult> {
    let mut failures = Vec::new();
    for c in large {
        let inst = c.instance();
        let run = |threads: usize| {
            let mut rng = rng_from(c.seed, 14);
            MultilevelMapper::new(ml_config(threads)).map(&inst, &mut rng)
        };
        let baseline = run(THREAD_SWEEP[0]);
        if let Err(e) = check_outcome_invariants(&inst, &baseline, c.is_square()) {
            failures.push(format!("{}: {e}", c.name));
            continue;
        }
        let want = RunSignature::of(&baseline);
        for &threads in &THREAD_SWEEP[1..] {
            let got = RunSignature::of(&run(threads));
            if got != want {
                failures.push(format!(
                    "{}: threads={threads} diverged from threads={} \
                     (cost {} vs {}, iterations {} vs {})",
                    c.name,
                    THREAD_SWEEP[0],
                    f64::from_bits(got.cost_bits),
                    f64::from_bits(want.cost_bits),
                    got.iterations,
                    want.iterations,
                ));
            }
        }
    }
    vec![summarize(
        Pillar::Differential,
        "multilevel/large-n-thread-invariance",
        failures,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build, build_large, CorpusKind};

    #[test]
    fn smoke_large_corpus_passes_multilevel_checks() {
        let large = build_large(CorpusKind::Smoke, 2005);
        let checks = run_large_checks(&large);
        assert_eq!(checks.len(), 1);
        for check in &checks {
            assert!(check.passed, "{}: {}", check.name, check.details);
        }
    }

    #[test]
    fn smoke_corpus_passes_every_differential_check() {
        let corpus = build(CorpusKind::Smoke, 2005);
        let checks = run_checks(&corpus);
        assert!(checks.len() >= 9, "expected the full check battery");
        for check in &checks {
            assert!(check.passed, "{}: {}", check.name, check.details);
        }
    }

    #[test]
    fn invariant_checker_rejects_a_stale_cost() {
        let corpus = build(CorpusKind::Smoke, 2005);
        let c = corpus.iter().find(|c| c.is_square()).unwrap();
        let inst = c.instance();
        let mut out = ce_run(c, SamplerMode::Sequential, 1, 99);
        out.cost += 1.0; // no longer the evaluator's cost for the mapping
        let err = check_outcome_invariants(&inst, &out, true).unwrap_err();
        assert!(err.contains("recomputation"), "{err}");
    }

    #[test]
    fn parity_check_flags_a_gap() {
        let corpus = build(CorpusKind::Smoke, 2005);
        let check = parity_check(&corpus, "synthetic/parity", |_| 1.0, |_| 10.0);
        assert!(!check.passed);
        assert!(check.details.contains("parity band"));
    }
}
