//! The verification report: one typed result per check, rendered as a
//! grouped pass/fail summary for `matchctl verify` and CI logs.

use std::fmt;

/// Which of the harness's three pillars a check belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pillar {
    /// Solver-vs-solver and solver-vs-oracle cross-checks.
    Differential,
    /// Cost-preserving / cost-predictable transformations.
    Metamorphic,
    /// Committed per-iteration trajectory fixtures.
    Golden,
}

impl fmt::Display for Pillar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pillar::Differential => write!(f, "differential"),
            Pillar::Metamorphic => write!(f, "metamorphic"),
            Pillar::Golden => write!(f, "golden-trajectory"),
        }
    }
}

/// Outcome of one named check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The pillar the check belongs to.
    pub pillar: Pillar,
    /// Stable check name, `area/property` style.
    pub name: String,
    /// Did every instance pass?
    pub passed: bool,
    /// Failure narrative (witness instances, diffs); empty on pass.
    pub details: String,
}

impl CheckResult {
    /// A passing result.
    pub fn pass(pillar: Pillar, name: impl Into<String>) -> CheckResult {
        CheckResult {
            pillar,
            name: name.into(),
            passed: true,
            details: String::new(),
        }
    }

    /// A failing result carrying its evidence.
    pub fn fail(
        pillar: Pillar,
        name: impl Into<String>,
        details: impl Into<String>,
    ) -> CheckResult {
        CheckResult {
            pillar,
            name: name.into(),
            passed: false,
            details: details.into(),
        }
    }
}

/// Everything `run_verify` produced.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All check results, in execution order.
    pub checks: Vec<CheckResult>,
    /// Corpus label ("ci", "full", …) for the header line.
    pub corpus: String,
    /// Number of corpus instances the checks swept.
    pub instances: usize,
}

impl VerifyReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Count of failing checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.passed).count()
    }

    /// Render the grouped pass/fail summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "match-verify: corpus `{}` ({} instances), {} checks\n",
            self.corpus,
            self.instances,
            self.checks.len()
        );
        for pillar in [Pillar::Differential, Pillar::Metamorphic, Pillar::Golden] {
            let group: Vec<&CheckResult> =
                self.checks.iter().filter(|c| c.pillar == pillar).collect();
            if group.is_empty() {
                continue;
            }
            let ok = group.iter().filter(|c| c.passed).count();
            out.push_str(&format!("\n{pillar} ({ok}/{} passed)\n", group.len()));
            for check in group {
                out.push_str(&format!(
                    "  [{}] {}\n",
                    if check.passed { "PASS" } else { "FAIL" },
                    check.name
                ));
                if !check.passed {
                    for line in check.details.lines() {
                        out.push_str(&format!("       {line}\n"));
                    }
                }
            }
        }
        let failures = self.failures();
        if failures == 0 {
            out.push_str("\nall checks passed\n");
        } else {
            out.push_str(&format!("\n{failures} check(s) FAILED\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_by_pillar_and_reports_failures() {
        let report = VerifyReport {
            checks: vec![
                CheckResult::pass(Pillar::Differential, "ce/thread-invariance"),
                CheckResult::fail(
                    Pillar::Metamorphic,
                    "scale/evaluator",
                    "paper-n6-v0: cost 3 != 2 * 1.6\nwitness: ...",
                ),
            ],
            corpus: "ci".into(),
            instances: 7,
        };
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        let text = report.render();
        assert!(text.contains("differential (1/1 passed)"));
        assert!(text.contains("[FAIL] scale/evaluator"));
        assert!(text.contains("witness"));
        assert!(text.contains("1 check(s) FAILED"));
    }

    #[test]
    fn empty_report_passes() {
        let r = VerifyReport::default();
        assert!(r.passed());
        assert!(r.render().contains("0 checks"));
    }
}
