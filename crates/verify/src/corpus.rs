//! The instance corpus the verification checks run over.
//!
//! Every corpus entry is generated from a seed derived from the corpus
//! master seed and the entry's *name* ([`match_rngutil::derive_seed_str`]),
//! so adding or removing entries never shifts another entry's instance
//! or its solver seed — golden fixtures and CI logs stay comparable
//! across corpus edits.

use match_core::MappingInstance;
use match_graph::gen::large::LargeFamilyConfig;
use match_graph::gen::overset::OversetConfig;
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::gen::topology::{TopologyConfig, TopologyKind};
use match_graph::{ResourceGraph, TaskGraph};
use match_rngutil::derive_seed_str;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which corpus to run: `Smoke` is a two-instance sanity sweep for unit
/// tests, `Ci` the fixed-seed set gating every pull request, `Full` a
/// wider sweep for local soak runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorpusKind {
    /// Two tiny instances; sub-second.
    Smoke,
    /// The PR gate: small squares, an overset instance, and
    /// rectangular (many-to-one) instances.
    #[default]
    Ci,
    /// Everything in `Ci` plus larger squares and extra seeds.
    Full,
}

impl CorpusKind {
    /// Parse the `--corpus` CLI value.
    pub fn from_name(name: &str) -> Option<CorpusKind> {
        match name {
            "smoke" => Some(CorpusKind::Smoke),
            "ci" => Some(CorpusKind::Ci),
            "full" => Some(CorpusKind::Full),
            _ => None,
        }
    }
}

/// One corpus entry: the generating graphs (kept so metamorphic
/// transformations and the shrinker can rebuild variants) plus the
/// solver seed every check on this instance shares.
pub struct CorpusInstance {
    /// Stable name; also the label its seeds derive from.
    pub name: String,
    /// The task interaction graph.
    pub tig: TaskGraph,
    /// The resource graph.
    pub resources: ResourceGraph,
    /// Seed handed to every solver run on this instance.
    pub seed: u64,
}

impl CorpusInstance {
    /// Densify into the evaluator's instance form.
    pub fn instance(&self) -> MappingInstance {
        MappingInstance::new(&self.tig, &self.resources)
    }

    /// `|V_t| = |V_r|`?
    pub fn is_square(&self) -> bool {
        self.tig.len() == self.resources.len()
    }
}

fn paper_square(master: u64, n: usize, variant: u64) -> CorpusInstance {
    let name = format!("paper-n{n}-v{variant}");
    let gen_seed = derive_seed_str(master, &format!("gen/{name}"));
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let pair = PaperFamilyConfig::new(n).generate(&mut rng);
    CorpusInstance {
        seed: derive_seed_str(master, &format!("run/{name}")),
        name,
        tig: pair.tig,
        resources: pair.resources,
    }
}

fn overset(master: u64, blocks: usize) -> CorpusInstance {
    let name = format!("overset-b{blocks}");
    let gen_seed = derive_seed_str(master, &format!("gen/{name}"));
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let pair = OversetConfig::new(blocks).generate(&mut rng);
    CorpusInstance {
        seed: derive_seed_str(master, &format!("run/{name}")),
        name,
        tig: pair.tig,
        resources: pair.resources,
    }
}

/// A rectangular (many-to-one) instance: `tasks` tasks on `resources`
/// resources, both drawn from the paper family's weight distributions.
fn rectangular(master: u64, tasks: usize, resources: usize) -> CorpusInstance {
    let name = format!("rect-t{tasks}-r{resources}");
    let gen_seed = derive_seed_str(master, &format!("gen/{name}"));
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let tig = PaperFamilyConfig::new(tasks).generate_tig(&mut rng);
    let platform = PaperFamilyConfig::new(resources).generate_platform(&mut rng);
    CorpusInstance {
        seed: derive_seed_str(master, &format!("run/{name}")),
        name,
        tig,
        resources: platform,
    }
}

/// A topology-aware square instance: a paper-family TIG over a
/// platform whose link costs grow monotonically with hop distance in
/// the named fabric (grid/torus/fattree/dragonfly).
fn topology(master: u64, kind: TopologyKind, n: usize) -> CorpusInstance {
    let name = format!("{}-n{n}", kind.name());
    let gen_seed = derive_seed_str(master, &format!("gen/{name}"));
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let pair = TopologyConfig::new(kind, n).generate(&mut rng);
    CorpusInstance {
        seed: derive_seed_str(master, &format!("run/{name}")),
        name,
        tig: pair.tig,
        resources: pair.resources,
    }
}

/// A sparse large-n square instance from the multilevel solver's
/// instance family.
fn large_square(master: u64, n: usize) -> CorpusInstance {
    let name = format!("large-n{n}");
    let gen_seed = derive_seed_str(master, &format!("gen/{name}"));
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let pair = LargeFamilyConfig::new(n).generate(&mut rng);
    CorpusInstance {
        seed: derive_seed_str(master, &format!("run/{name}")),
        name,
        tig: pair.tig,
        resources: pair.resources,
    }
}

/// The large-n companion corpus for the multilevel differential checks.
///
/// Kept out of [`build`] deliberately: every existing CE/GA sweep runs
/// over the instances `build` returns, and a flat `2n²`-sample solve at
/// n = 4096 would never finish. Only the checks that understand these
/// sizes (the multilevel pillar) should iterate this set.
pub fn build_large(kind: CorpusKind, master_seed: u64) -> Vec<CorpusInstance> {
    let m = master_seed;
    match kind {
        CorpusKind::Smoke => vec![large_square(m, 128)],
        CorpusKind::Ci | CorpusKind::Full => vec![
            large_square(m, 512),
            large_square(m, 2048),
            large_square(m, 4096),
        ],
    }
}

/// Build the corpus for `kind` under `master_seed`.
pub fn build(kind: CorpusKind, master_seed: u64) -> Vec<CorpusInstance> {
    let m = master_seed;
    match kind {
        CorpusKind::Smoke => vec![paper_square(m, 6, 0), rectangular(m, 8, 5)],
        CorpusKind::Ci => vec![
            paper_square(m, 6, 0),
            paper_square(m, 9, 0),
            paper_square(m, 12, 0),
            paper_square(m, 9, 1),
            overset(m, 8),
            rectangular(m, 10, 6),
            rectangular(m, 12, 5),
            topology(m, TopologyKind::Grid, 16),
            topology(m, TopologyKind::Torus, 16),
            topology(m, TopologyKind::FatTree, 16),
            topology(m, TopologyKind::Dragonfly, 16),
        ],
        CorpusKind::Full => {
            let mut all = build(CorpusKind::Ci, m);
            all.extend([
                paper_square(m, 16, 0),
                paper_square(m, 20, 0),
                paper_square(m, 12, 1),
                paper_square(m, 6, 1),
                overset(m, 12),
                rectangular(m, 16, 6),
                rectangular(m, 20, 8),
                topology(m, TopologyKind::Grid, 25),
                topology(m, TopologyKind::Torus, 24),
                topology(m, TopologyKind::FatTree, 24),
                topology(m, TopologyKind::Dragonfly, 24),
            ]);
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_seed_stable_and_name_keyed() {
        let a = build(CorpusKind::Ci, 2005);
        let b = build(CorpusKind::Ci, 2005);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.tig, y.tig);
            assert_eq!(x.resources, y.resources);
        }
        // Entries are independent streams: a different master moves all.
        let c = build(CorpusKind::Ci, 2006);
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn ci_corpus_covers_square_overset_and_rectangular() {
        let corpus = build(CorpusKind::Ci, 2005);
        assert!(corpus.iter().any(|c| c.is_square()));
        assert!(corpus.iter().any(|c| !c.is_square()));
        assert!(corpus.iter().any(|c| c.name.starts_with("overset")));
        for c in &corpus {
            let inst = c.instance();
            assert_eq!(inst.n_tasks(), c.tig.len());
            assert_eq!(inst.n_resources(), c.resources.len());
        }
    }

    #[test]
    fn large_corpus_is_square_sparse_and_seed_stable() {
        let a = build_large(CorpusKind::Smoke, 2005);
        let b = build_large(CorpusKind::Smoke, 2005);
        assert_eq!(a.len(), 1);
        assert!(a[0].is_square());
        assert_eq!(a[0].tig, b[0].tig);
        assert_eq!(a[0].seed, b[0].seed);
        // (The CI set's 512/2048/4096 entries are exercised by the
        // release-built `matchctl verify --corpus ci` run, not here —
        // their platform closure alone is too slow for a debug test.)
        // These names must never leak into the regular corpus.
        for c in build(CorpusKind::Full, 2005) {
            assert!(!c.name.starts_with("large-"), "{}", c.name);
        }
    }

    #[test]
    fn ci_corpus_covers_every_topology_family() {
        let corpus = build(CorpusKind::Ci, 2005);
        for kind in TopologyKind::ALL {
            let name = format!("{}-n16", kind.name());
            let entry = corpus
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("ci corpus is missing {name}"));
            assert!(entry.is_square(), "{name}");
            assert_eq!(entry.tig.len(), 16);
        }
    }

    #[test]
    fn rectangular_instances_have_more_tasks_than_resources() {
        for c in build(CorpusKind::Full, 2005) {
            if c.name.starts_with("rect") {
                assert!(c.tig.len() > c.resources.len(), "{}", c.name);
            }
        }
    }
}
