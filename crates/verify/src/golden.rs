//! Golden-trajectory regression: committed fixtures pin the exact
//! per-iteration best-cost sequence (captured through
//! [`match_telemetry::MemoryRecorder`]) of representative solver
//! configurations on a fixed instance. Any change to an RNG stream,
//! sampling order, or update rule shows up as a trajectory diff — the
//! check renders the first divergence instead of a bare "mismatch".
//!
//! Costs are stored as raw IEEE-754 bit patterns (hex) with a decimal
//! rendering alongside for humans; the bits are authoritative, so the
//! comparison is exact and platform-independent. After an *intentional*
//! stream change, regenerate with `matchctl verify --update-golden`.

use crate::report::{CheckResult, Pillar};
use match_core::{
    EvalBackend, Mapper, MappingInstance, MatchConfig, Matcher, MultilevelConfig, SamplerMode,
};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::gen::topology::{TopologyConfig, TopologyKind};
use match_multilevel::MultilevelMapper;
use match_rngutil::{derive_seed_str, rng_from};
use match_telemetry::MemoryRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Master seed the fixture instance and run streams derive from.
/// Deliberately unrelated to the CLI's `--seed`: fixtures must stay
/// byte-stable whatever corpus seed a run uses.
const FIXTURE_MASTER: u64 = 0x4d61_5443;

/// Tasks (= resources) in the fixture instance.
const FIXTURE_N: usize = 8;

/// Which solver configuration a fixture pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Solver {
    CeSequential,
    CeBatched,
    GaSequential,
    GaBatched,
    Multilevel,
}

/// Which instance family a fixture solves over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// The shared paper-family instance.
    Paper,
    /// A topology-aware platform (hop-distance link costs).
    Topology(TopologyKind),
}

/// One committed fixture: a named solver configuration on a fixed
/// instance.
#[derive(Debug, Clone, Copy)]
pub struct FixtureSpec {
    /// Fixture (and file stem) name.
    pub name: &'static str,
    solver: Solver,
    family: Family,
}

/// The committed fixtures: both sampling pipelines of both iterative
/// solver families and the multilevel driver's coarsen–solve–refine
/// trajectory on the paper-family instance, plus the batched CE
/// trajectory on each of the four topology-aware platforms.
pub const FIXTURES: [FixtureSpec; 9] = [
    FixtureSpec {
        name: "ce-sequential-n8",
        solver: Solver::CeSequential,
        family: Family::Paper,
    },
    FixtureSpec {
        name: "ce-batched-n8",
        solver: Solver::CeBatched,
        family: Family::Paper,
    },
    FixtureSpec {
        name: "ga-sequential-n8",
        solver: Solver::GaSequential,
        family: Family::Paper,
    },
    FixtureSpec {
        name: "ga-batched-n8",
        solver: Solver::GaBatched,
        family: Family::Paper,
    },
    FixtureSpec {
        name: "multilevel-n8",
        solver: Solver::Multilevel,
        family: Family::Paper,
    },
    FixtureSpec {
        name: "grid-n8",
        solver: Solver::CeBatched,
        family: Family::Topology(TopologyKind::Grid),
    },
    FixtureSpec {
        name: "torus-n8",
        solver: Solver::CeBatched,
        family: Family::Topology(TopologyKind::Torus),
    },
    FixtureSpec {
        name: "fattree-n8",
        solver: Solver::CeBatched,
        family: Family::Topology(TopologyKind::FatTree),
    },
    FixtureSpec {
        name: "dragonfly-n8",
        solver: Solver::CeBatched,
        family: Family::Topology(TopologyKind::Dragonfly),
    },
];

/// What a fixture pins: the final mapping plus the raw per-iteration
/// best sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Best mapping at the end of the run.
    pub mapping: Vec<usize>,
    /// Its cost.
    pub final_cost: f64,
    /// Best cost of each iteration, in emission order (not the running
    /// minimum).
    pub iter_bests: Vec<f64>,
}

fn fixture_instance(family: Family) -> MappingInstance {
    match family {
        Family::Paper => {
            let gen_seed = derive_seed_str(FIXTURE_MASTER, "gen/paper-n8");
            let mut rng = StdRng::seed_from_u64(gen_seed);
            let pair = PaperFamilyConfig::new(FIXTURE_N).generate(&mut rng);
            MappingInstance::from_pair(&pair)
        }
        Family::Topology(kind) => {
            let gen_seed =
                derive_seed_str(FIXTURE_MASTER, &format!("gen/{}-n{FIXTURE_N}", kind.name()));
            let mut rng = StdRng::seed_from_u64(gen_seed);
            let pair = TopologyConfig::new(kind, FIXTURE_N).generate(&mut rng);
            MappingInstance::from_pair(&pair)
        }
    }
}

/// Re-run a fixture's solver and capture its trajectory through a
/// [`MemoryRecorder`].
pub fn capture(spec: &FixtureSpec) -> Trajectory {
    capture_with_backend(spec, EvalBackend::default())
}

/// [`capture`] with the evaluation backend forced. Backends are
/// bit-exact, so every fixture must reproduce the *same* committed
/// trajectory whichever backend runs it — that claim is checked by
/// [`run_checks`], not just asserted.
pub fn capture_with_backend(spec: &FixtureSpec, backend: EvalBackend) -> Trajectory {
    let inst = fixture_instance(spec.family);
    let run_seed = derive_seed_str(FIXTURE_MASTER, &format!("run/{}", spec.name));
    let mut rng = rng_from(run_seed, 0);
    let mut recorder = MemoryRecorder::new();
    let (mapping, final_cost) = match spec.solver {
        Solver::CeSequential | Solver::CeBatched => {
            let sampler = if spec.solver == Solver::CeSequential {
                SamplerMode::Sequential
            } else {
                SamplerMode::Batched
            };
            let cfg = MatchConfig {
                threads: 2,
                sampler,
                backend,
                max_iters: 40,
                ..MatchConfig::default()
            };
            let out = Matcher::new(cfg).run_traced(&inst, &mut rng, &mut recorder);
            (out.mapping.as_slice().to_vec(), out.cost)
        }
        Solver::GaSequential | Solver::GaBatched => {
            let (sampler, threads) = if spec.solver == Solver::GaSequential {
                (SamplerMode::Sequential, 1)
            } else {
                (SamplerMode::Batched, 2)
            };
            let cfg = GaConfig {
                population: 40,
                generations: 25,
                threads,
                sampler,
                backend,
                ..GaConfig::paper_default()
            };
            let out = FastMapGa::new(cfg).run_traced(&inst, &mut rng, &mut recorder);
            (out.outcome.mapping.as_slice().to_vec(), out.outcome.cost)
        }
        Solver::Multilevel => {
            // A low coarsen target forces a real hierarchy even at the
            // fixture's n = 8, so the trajectory pins the coarsening
            // and per-level refinement streams, not just the coarse CE.
            let cfg = MultilevelConfig {
                coarsen_target: 4,
                refine_passes: 2,
                refine_candidates: 4,
                threads: 2,
                backend,
            };
            let out = MultilevelMapper::new(cfg).map_traced(&inst, &mut rng, &mut recorder);
            (out.mapping.as_slice().to_vec(), out.cost)
        }
    };
    Trajectory {
        mapping,
        final_cost,
        iter_bests: recorder.iter_bests(),
    }
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Serialise a trajectory to the fixture text format.
pub fn to_text(name: &str, traj: &Trajectory) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# match-verify golden trajectory; regenerate with `matchctl verify --update-golden`"
    );
    let _ = writeln!(out, "fixture {name}");
    let _ = writeln!(
        out,
        "mapping {}",
        traj.mapping
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(out, "final {} {}", hex(traj.final_cost), traj.final_cost);
    for (i, best) in traj.iter_bests.iter().enumerate() {
        let _ = writeln!(out, "iter {i} {} {}", hex(*best), best);
    }
    out
}

/// Parse the fixture text format; hex bit patterns are authoritative,
/// the trailing decimal is ignored.
pub fn from_text(input: &str) -> Result<Trajectory, String> {
    let mut mapping = None;
    let mut final_cost = None;
    let mut iter_bests = Vec::new();
    let parse_bits = |tok: &str| -> Result<f64, String> {
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad f64 bit pattern `{tok}`: {e}"))
    };
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        match tokens.next() {
            Some("fixture") => {}
            Some("mapping") => {
                mapping = Some(
                    tokens
                        .map(|t| t.parse::<usize>().map_err(|e| err(&e.to_string())))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            Some("final") => {
                let bits = tokens.next().ok_or_else(|| err("missing final bits"))?;
                final_cost = Some(parse_bits(bits)?);
            }
            Some("iter") => {
                let idx: usize = tokens
                    .next()
                    .ok_or_else(|| err("missing iter index"))?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| err(&e.to_string()))?;
                if idx != iter_bests.len() {
                    return Err(err(&format!(
                        "iter index {idx} out of order (expected {})",
                        iter_bests.len()
                    )));
                }
                let bits = tokens.next().ok_or_else(|| err("missing iter bits"))?;
                iter_bests.push(parse_bits(bits)?);
            }
            Some(other) => return Err(err(&format!("unknown record `{other}`"))),
            None => {}
        }
    }
    Ok(Trajectory {
        mapping: mapping.ok_or("fixture has no mapping record")?,
        final_cost: final_cost.ok_or("fixture has no final record")?,
        iter_bests,
    })
}

/// Render a trajectory diff the way `matchctl report` renders curves:
/// aligned rows, a `!` marker on the first divergence, and two rows of
/// context on either side.
fn render_diff(want: &Trajectory, got: &Trajectory) -> String {
    let mut out = String::new();
    if want.mapping != got.mapping {
        let _ = writeln!(
            out,
            "  mapping: expected {:?}, got {:?}",
            want.mapping, got.mapping
        );
    }
    if want.final_cost.to_bits() != got.final_cost.to_bits() {
        let _ = writeln!(
            out,
            "  final:   expected {} ({}), got {} ({})",
            want.final_cost,
            hex(want.final_cost),
            got.final_cost,
            hex(got.final_cost)
        );
    }
    let len = want.iter_bests.len().max(got.iter_bests.len());
    let first_div = (0..len).find(|&i| {
        want.iter_bests.get(i).map(|v| v.to_bits()) != got.iter_bests.get(i).map(|v| v.to_bits())
    });
    if let Some(d) = first_div {
        let _ = writeln!(
            out,
            "  trajectories diverge at iter {d} ({} expected iters, {} got):",
            want.iter_bests.len(),
            got.iter_bests.len()
        );
        let lo = d.saturating_sub(2);
        let hi = (d + 3).min(len);
        for i in lo..hi {
            let fmt = |v: Option<&f64>| match v {
                Some(v) => format!("{v} ({})", hex(*v)),
                None => "<absent>".to_string(),
            };
            let marker = if i == d { "!" } else { " " };
            let _ = writeln!(
                out,
                "  {marker} iter {i:>3}: expected {}, got {}",
                fmt(want.iter_bests.get(i)),
                fmt(got.iter_bests.get(i))
            );
        }
    }
    out
}

/// Where the committed fixtures live: `crates/verify/fixtures` when
/// running from the workspace root, otherwise the crate's own
/// `fixtures/` directory (tests, odd working directories).
pub fn default_fixture_dir() -> PathBuf {
    let from_root = Path::new("crates/verify/fixtures");
    if from_root.is_dir() {
        return from_root.to_path_buf();
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Regenerate every fixture file under `dir`.
pub fn update_fixtures(dir: &Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for spec in &FIXTURES {
        let path = dir.join(format!("{}.trace", spec.name));
        std::fs::write(&path, to_text(spec.name, &capture(spec)))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

/// Run the golden-trajectory checks against the fixtures under `dir`.
pub fn run_checks(dir: &Path) -> Vec<CheckResult> {
    FIXTURES
        .iter()
        .map(|spec| {
            let name = format!("golden/{}", spec.name);
            let path = dir.join(format!("{}.trace", spec.name));
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    return CheckResult::fail(
                        Pillar::Golden,
                        name,
                        format!(
                            "cannot read fixture {}: {e}\n  (run `matchctl verify --update-golden` to create it)",
                            path.display()
                        ),
                    )
                }
            };
            let want = match from_text(&text) {
                Ok(t) => t,
                Err(e) => {
                    return CheckResult::fail(
                        Pillar::Golden,
                        name,
                        format!("fixture {} is corrupt: {e}", path.display()),
                    )
                }
            };
            let bitwise_eq = |a: &Trajectory, b: &Trajectory| {
                a == b
                    && a.final_cost.to_bits() == b.final_cost.to_bits()
                    && a.iter_bests.len() == b.iter_bests.len()
                    && a.iter_bests
                        .iter()
                        .zip(&b.iter_bests)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            };
            let got = capture(spec);
            if !bitwise_eq(&want, &got) {
                return CheckResult::fail(
                    Pillar::Golden,
                    name,
                    format!(
                        "trajectory drifted from {}:\n{}  if the stream change is intentional, \
                         regenerate with `matchctl verify --update-golden`",
                        path.display(),
                        render_diff(&want, &got)
                    ),
                );
            }
            // The same fixture re-run with the Simd backend forced must
            // land on the identical committed trajectory: backend choice
            // is throughput-only, never a stream change.
            let simd = capture_with_backend(spec, EvalBackend::Simd);
            if !bitwise_eq(&want, &simd) {
                return CheckResult::fail(
                    Pillar::Golden,
                    name,
                    format!(
                        "Simd backend diverged from the committed trajectory {} \
                         (the default backend reproduced it, so this is an eval-kernel bug, \
                         not a stream change):\n{}",
                        path.display(),
                        render_diff(&want, &simd)
                    ),
                );
            }
            CheckResult::pass(Pillar::Golden, name)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips_bit_exactly() {
        let traj = Trajectory {
            mapping: vec![3, 0, 2, 1],
            final_cost: 0.1 + 0.2, // not representable tidily: bits matter
            iter_bests: vec![7.5, std::f64::consts::PI, 7.5],
        };
        let text = to_text("roundtrip", &traj);
        let back = from_text(&text).unwrap();
        assert_eq!(back.mapping, traj.mapping);
        assert_eq!(back.final_cost.to_bits(), traj.final_cost.to_bits());
        assert_eq!(back.iter_bests.len(), traj.iter_bests.len());
        for (a, b) in back.iter_bests.iter().zip(&traj.iter_bests) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn capture_is_deterministic_per_spec() {
        for spec in &FIXTURES[..2] {
            let a = capture(spec);
            let b = capture(spec);
            assert_eq!(a, b, "capture of {} must be reproducible", spec.name);
            assert!(
                !a.iter_bests.is_empty(),
                "{} recorded no iterations",
                spec.name
            );
            assert_eq!(a.final_cost.to_bits(), b.final_cost.to_bits());
        }
    }

    #[test]
    fn diff_pinpoints_first_divergence() {
        let want = Trajectory {
            mapping: vec![0, 1],
            final_cost: 1.0,
            iter_bests: vec![5.0, 4.0, 3.0, 2.0],
        };
        let mut got = want.clone();
        got.iter_bests[2] = 3.5;
        let diff = render_diff(&want, &got);
        assert!(diff.contains("diverge at iter 2"), "{diff}");
        assert!(diff.contains("! iter   2"), "{diff}");
    }

    #[test]
    fn committed_fixtures_match_current_streams() {
        // The same assertion `matchctl verify` makes, run as a plain
        // test so `cargo test` alone catches trajectory drift.
        let dir = default_fixture_dir();
        for check in run_checks(&dir) {
            assert!(check.passed, "{}: {}", check.name, check.details);
        }
    }

    #[test]
    fn corrupt_fixture_is_reported_not_panicked() {
        let dir = std::env::temp_dir().join("match-verify-golden-corrupt-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ce-sequential-n8.trace"), "garbage record\n").unwrap();
        let checks = run_checks(&dir);
        assert!(checks.iter().all(|c| !c.passed));
        assert!(checks[0].details.contains("corrupt") || checks[0].details.contains("unknown"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
