//! Offline stand-in for `serde` sufficient for derive-only consumers.
//!
//! The workspace uses serde exclusively as `#[derive(Serialize,
//! Deserialize)]` markers (no runtime serialization calls, no trait
//! bounds), so the derives expand to nothing. Shipping the macros from
//! the `serde` crate itself means `use serde::{Serialize, Deserialize}`
//! and `#[derive(serde::Serialize)]` both resolve without a separate
//! `serde_derive` package.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
