//! Offline API-compatible stand-in for `parking_lot` (0.12 subset):
//! `Mutex` (non-poisoning `lock`, `into_inner`) and `Condvar`
//! (`wait(&mut MutexGuard)`, `notify_one`, `notify_all`), backed by the
//! std primitives with poison errors swallowed.

use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can take the std guard out and put the
    // re-acquired one back through the same `&mut` borrow.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocks; never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condvar.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and sleep until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    /// Wake one waiter. Returns whether a thread was woken (always
    /// `false` here: std does not report it; callers ignore the value).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wake all waiters. Returns the number woken (always 0 here: std
    /// does not report it; callers ignore the value).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
