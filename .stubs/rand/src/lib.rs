//! Offline API-compatible stand-in for the `rand` crate (0.9 subset).
//!
//! Implements exactly the surface the matchkit workspace uses:
//! `StdRng` (xoshiro256** seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! `Rng::{random, random_range}`, and `seq::SliceRandom::shuffle`.
//! Deterministic per seed; statistically solid for the workspace's
//! frequency/chi-square style tests. NOT the real rand crate: streams
//! differ from upstream `StdRng`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Fill `dst` with random bytes (little-endian words).
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}
impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform random value in `range`.
    fn random_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256** under the hood.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (cannot occur via SplitMix64, but
            // keep the guard for clarity).
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API completeness.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers.
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = r.random_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "{f}");
        }
    }
}
