//! Offline API-compatible stand-in for the `crossbeam` facade crate
//! (0.8 subset). Provides exactly what the matchkit workspace uses:
//! `thread::scope` (backed by `std::thread::scope`) and
//! `channel::{unbounded, Sender, Receiver}`.

pub mod thread {
    //! Scoped threads over `std::thread::scope`.
    use std::any::Any;

    /// Error type mirroring crossbeam's scope result.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Spawner passed to the `scope` closure; also passed (by reference)
    /// to every spawned closure, as crossbeam does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (`|_| ...` when unused).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope whose threads may borrow from the caller's
    /// stack; all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates as a
    /// panic (std semantics) rather than an `Err`; the workspace only
    /// ever `.expect()`s the result, so the observable behaviour matches.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub mod channel {
    //! MPMC unbounded channel on std primitives.
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers are gone. The workspace never
    /// drops receivers before senders, so sends always succeed here.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` once the channel is closed and drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value and wake one receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let closed = inner.senders == 0;
            drop(inner);
            if closed {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; `Err(RecvError)` once every
        /// sender is dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking variant; `None` when empty (channel may be open).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn channel_mpmc_drains_on_close() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert!(rx2.recv().is_err());
        assert_eq!(got.len(), 10);
    }
}
