//! Offline API-compatible stand-in for `criterion` (0.5 subset).
//!
//! Supports the harness surface the matchkit benches use:
//! `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, and `Bencher::iter`.
//!
//! Measurement model: a short warm-up, then timed batches until the
//! group's measurement budget (scaled down ~10× versus real criterion,
//! keeping `cargo bench` smoke-runnable) is spent; prints mean ns/iter.
//! No statistics, baselines, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's implementation).
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean wall-clock per iteration measured by the last `iter` call.
    mean_ns: f64,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly and record the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~10% of the budget or at least once.
        let warm_budget = self.budget / 10;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= warm_budget || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measure in batches sized to ~1/20 of the budget each.
        let batch = ((self.budget.as_nanos() as f64 / 20.0 / per_iter.max(1.0)) as u64).max(1);
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
    }

    /// Batched variant; setup cost is excluded per batch of one.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        while start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total_ns += t.elapsed().as_nanos();
            total_iters += 1;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
    }
}

/// Batch sizing hint (ignored by this harness).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (scales the time budget in this harness).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for each benchmark in the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Throughput declaration (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn budget(&self) -> Duration {
        // Scaled-down budget so full bench suites stay smoke-runnable:
        // proportional to the requested time, floored for stability.
        let ns = (self.measurement_time.as_nanos() / 10).max(20_000_000) as u64;
        Duration::from_nanos(ns)
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            mean_ns: f64::NAN,
            budget: self.budget(),
        };
        f(&mut b);
        println!(
            "{:<40} time: [{:>12.1} ns/iter]  ({:.2} Melem/s)",
            format!("{}/{}", self.name, id),
            b.mean_ns,
            if b.mean_ns > 0.0 { 1e3 / b.mean_ns } else { 0.0 }
        );
        self.criterion.results.push((
            format!("{}/{}", self.name, id),
            b.mean_ns,
        ));
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Throughput declaration (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Standalone single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Final-summary hook mirroring criterion's API (no-op).
    pub fn final_summary(&mut self) {}
}

/// Define a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
