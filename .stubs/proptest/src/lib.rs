//! Offline API-compatible stand-in for `proptest` (1.x subset).
//!
//! Covers the surface the matchkit workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `Strategy` + `prop_map`,
//! range and `any::<T>()` strategies, tuple strategies,
//! `proptest::collection::vec`, `Just`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics: deterministic pseudo-random generation (no shrinking, no
//! persistence). Each test runs `cases` deterministic cases; a failing
//! case panics with the generated message.

/// Deterministic generator handed to strategies.
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeded construction (xoshiro256** expanded from SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        TestRng { state: s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.
    use super::TestRng;

    /// A recipe for generating values.
    pub trait Strategy {
        /// Generated value type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `pred` (bounded retries).
        fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Always the same value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    macro_rules! impl_any {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let g: fn(&mut TestRng) -> $t = $gen;
                    g(rng)
                }
            }
        )*};
    }
    impl_any! {
        u64 => |r| r.next_u64(),
        u32 => |r| (r.next_u64() >> 32) as u32,
        u16 => |r| (r.next_u64() >> 48) as u16,
        u8 => |r| (r.next_u64() >> 56) as u8,
        usize => |r| r.next_u64() as usize,
        i64 => |r| r.next_u64() as i64,
        i32 => |r| (r.next_u64() >> 32) as i32,
        bool => |r| r.next_u64() & 1 == 1,
        f64 => |r| r.unit_f64() * 2e6 - 1e6,
    }
}

/// Uniform-from-`T`'s-domain strategy constructor.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any {
        _marker: core::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::Strategy;
    use super::TestRng;

    /// Size specification accepted by [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case driver used by the `proptest!` expansion.
    use super::TestRng;

    /// Subset of proptest's config: only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
        /// Maximum rejects (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    /// Name used by proptest's prelude.
    pub type ProptestConfig = Config;

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Failure modes a case body can signal.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Assertion-failure constructor.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Assumption-rejection constructor.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runs the deterministic case loop.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Runner for `config`.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Execute `body` until `cases` accepted cases have passed.
        pub fn run_fn<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while accepted < self.config.cases {
                // Fixed base keeps runs reproducible across invocations.
                let mut rng = TestRng::new(0xA076_1D64_78BD_642F ^ case);
                case += 1;
                match body(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections \
                                 ({rejected}) before {} cases passed",
                                self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
    }
}

/// Body of a `proptest!`-generated test: define the test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run_fn(|__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($a), stringify!($b), left, right,
                )),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($a), stringify!($b), left,
                )),
            );
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
        any::<u64>().prop_map(move |seed| {
            let mut v: Vec<usize> = (0..n).collect();
            let mut rng = crate::TestRng::new(seed);
            for i in (1..n).rev() {
                let j = rng.below(i + 1);
                v.swap(i, j);
            }
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        fn ranges_and_collections(
            a in 3usize..10,
            b in -2i64..=2,
            f in 0.25f64..0.75,
            pair in (0usize..5, 0usize..5),
            mut xs in collection::vec(0u64..100, 1..8),
            fixed in collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            xs.push(7);
            prop_assert!((2..=8).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
        }

        fn permutation_strategy_valid(p in perm(9)) {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        }

        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
